//! The algebraic optimizer: a fixpoint rewrite engine over [`Expr`], run by
//! the engine between typecheck and the plan cache.
//!
//! Four semantics-preserving rules, in firing order:
//!
//! 1. **Constant folding** — a closed, non-literal subexpression whose
//!    evaluation completes within a small prepare-time budget is replaced by
//!    its value. Subtrees whose evaluation *errors* under the budget are left
//!    alone, so limit-hitting plans keep their runtime behaviour.
//! 2. **Ext-fusion** (map fusion) — `ext(f, ext(λx. {h}, s))` becomes
//!    `ext(λx. let y = h in body_f, s)` when `h` is syntactically injective
//!    in `x`, eliminating the intermediate set.
//! 3. **Filter pushdown** — `dcr/sru(e, f, u)(ext(λx. if c then {x} else ∅, s))`
//!    becomes `dcr/sru(e, λx. if c then f(x) else e, u)(s)`, leaning on the
//!    recursor's well-formedness precondition that `e` is `u`'s identity.
//! 4. **Common-subexpression hoisting** — a repeated subexpression in the
//!    *unconditional* part of a recursor's iterated arm (the combiner of a
//!    `dcr`/`sru`, the insert step of an `sri`/`esr`, the body of a
//!    `loop`/`log-loop`) is bound once in a `let` above the recursor when the
//!    argument's syntactic cardinality guarantees the arm runs often enough
//!    to pay for the binding.
//!
//! # The cost gate
//!
//! Every candidate rewrite is gated by the static cost model: the whole
//! query is re-analysed ([`analyze_query`]) and the rewrite fires only when
//! the new symbolic **work** bound and **span** bound are *provably* `≤` the
//! old ones ([`crate::analyze::Bound::le_pointwise`] — a sound, incomplete check, so a
//! rewrite the model cannot justify is simply skipped). This is the
//! paper-facing invariant: optimization never weakens a plan's work/span
//! guarantee.
//!
//! # Spans survive rewrites
//!
//! Rebuilt nodes inherit the span of the node they replace — a fused map
//! takes the outer `ext`'s span, a folded constant takes the folded
//! subtree's span, a hoisted binding takes the recursor's span — so runtime
//! errors raised inside optimized regions still render caret diagnostics
//! against the original source text.
//!
//! # What the optimizer may change
//!
//! Values are preserved exactly (the differential suites pin this with the
//! optimizer on vs off, on both backends). Measured cost may only improve on
//! plans that complete. Two behaviours are deliberately *not* preserved:
//! a plan that exceeds a session limit may fail at a different (still
//! spanned) node than the raw plan, and hoisting may surface an evaluation
//! error earlier than the raw left-to-right order would have.

use crate::analysis::free_vars;
use crate::analyze::{analyze_query, CostBound, QueryAnalysis};
use crate::eval::{log_rounds, EvalConfig, Evaluator};
use crate::expr::{fresh_var, Expr, ExprKind};
use crate::span::Span;
use ncql_object::{Type, Value};
use std::collections::BTreeSet;

/// How hard `Session::prepare` tries to optimize a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No rewriting: the prepared plan is the raw typed AST.
    None,
    /// The full cost-gated rule set (the default).
    #[default]
    Default,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::None => write!(f, "none"),
            OptLevel::Default => write!(f, "default"),
        }
    }
}

/// One accepted rewrite, for `:optimize`-style reporting.
#[derive(Debug, Clone)]
pub struct FiredRewrite {
    /// The rule that fired: `"const-fold"`, `"ext-fusion"`,
    /// `"filter-pushdown"`, or `"cse-hoist"`.
    pub rule: &'static str,
    /// Human-readable description of the rewritten site.
    pub description: String,
    /// Source span of the replaced node, when it had one.
    pub span: Option<Span>,
}

/// The result of running [`optimize`] on one query.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten expression (the input, unchanged, when nothing fired).
    pub expr: Expr,
    /// Every accepted rewrite, in firing order.
    pub fired: Vec<FiredRewrite>,
    /// The cost bounds of the *input* expression.
    pub cost_before: CostBound,
    /// The full analysis of the *rewritten* expression — reusable by the
    /// caller, so optimizing does not force a third `analyze_query` pass.
    pub analysis: QueryAnalysis,
}

/// Fixpoint passes over the rule list before giving up.
const MAX_PASSES: usize = 8;
/// Hard cap on accepted rewrites per query.
const MAX_FIRES: usize = 64;
/// Hard cap on cost-gate evaluations per query (each one re-analyses the
/// whole candidate).
const MAX_GATE_EVALS: usize = 256;
/// Work budget for prepare-time constant folding: a closed subtree more
/// expensive than this stays in the plan.
const FOLD_WORK_BUDGET: u64 = 4096;
/// Cardinality budget for folded intermediate sets.
const FOLD_SET_BUDGET: usize = 1024;
/// Minimum node count before a closed subtree is worth folding.
const FOLD_MIN_SIZE: usize = 2;
/// Minimum node count before a repeated subexpression is worth hoisting.
const CSE_MIN_SIZE: usize = 6;

/// Run the cost-gated fixpoint rewriter on one query. `schema` and
/// `config` must match what the plan will execute under: the schema feeds
/// the symbolic cost gate, and the config's registry and limits drive
/// constant folding (folding never exceeds the session's own `max_work` /
/// `max_set_size`, so a subtree that would trip a limit at runtime is left
/// in the plan to trip it there).
pub fn optimize(expr: &Expr, schema: &[(String, Type)], config: &EvalConfig) -> RewriteOutcome {
    let before = analyze_query(expr, schema, &config.registry);
    optimize_analyzed(expr, schema, config, before)
}

/// [`optimize`], reusing an already-computed analysis of `expr`.
pub fn optimize_analyzed(
    expr: &Expr,
    schema: &[(String, Type)],
    config: &EvalConfig,
    before: QueryAnalysis,
) -> RewriteOutcome {
    let cost_before = before.cost.clone();
    let mut current = expr.clone();
    let mut current_analysis = before;
    let mut fired: Vec<FiredRewrite> = Vec::new();
    let mut gate_evals = 0usize;

    let fold_config = fold_config(config);

    'passes: for _ in 0..MAX_PASSES {
        let mut fired_this_pass = false;
        for rule in [
            Rule::ConstFold,
            Rule::ExtFusion,
            Rule::FilterPushdown,
            Rule::CseHoist,
        ] {
            // Walk the candidate sites for this rule left to right; `skip`
            // counts sites the cost gate has already rejected in this sweep.
            let mut skip = 0usize;
            loop {
                if fired.len() >= MAX_FIRES || gate_evals >= MAX_GATE_EVALS {
                    break 'passes;
                }
                let mut remaining = skip;
                let Some(hit) = rewrite_nth(&current, &mut remaining, &mut |e| {
                    rule.try_rewrite(e, &fold_config)
                }) else {
                    break;
                };
                gate_evals += 1;
                let after = analyze_query(&hit.expr, schema, &config.registry);
                if gate_accepts(&current_analysis.cost, &after.cost) {
                    current = hit.expr;
                    current_analysis = after;
                    fired.push(FiredRewrite {
                        rule: rule.name(),
                        description: hit.description,
                        span: hit.site_span,
                    });
                    fired_this_pass = true;
                    skip = 0;
                } else {
                    skip += 1;
                }
            }
        }
        if !fired_this_pass {
            break;
        }
    }

    RewriteOutcome {
        expr: current,
        fired,
        cost_before,
        analysis: current_analysis,
    }
}

/// The gate: both bounds provably no worse. Incompleteness of
/// `le_pointwise` only ever suppresses a rewrite.
fn gate_accepts(before: &CostBound, after: &CostBound) -> bool {
    after.work.le_pointwise(&before.work) && after.span.le_pointwise(&before.span)
}

/// The sequential, budget-capped configuration constant folding runs under.
fn fold_config(config: &EvalConfig) -> EvalConfig {
    let mut fold = config.clone();
    fold.max_work = config.max_work.min(FOLD_WORK_BUDGET);
    fold.max_set_size = config.max_set_size.min(FOLD_SET_BUDGET);
    fold.parallelism = None;
    fold
}

/// A whole-tree rewrite produced by one rule at one site.
struct Hit {
    expr: Expr,
    description: String,
    site_span: Option<Span>,
}

/// A node-local rewrite: the replacement subtree plus a description.
struct LocalHit {
    replacement: Expr,
    description: String,
}

/// Pre-order search for the `skip`-th site where `rule` matches; on a match,
/// rebuilds the ancestor spine with [`Expr::with_children`] (which preserves
/// every ancestor's span, binders, and type annotations).
fn rewrite_nth(
    expr: &Expr,
    skip: &mut usize,
    rule: &mut impl FnMut(&Expr) -> Option<LocalHit>,
) -> Option<Hit> {
    if let Some(local) = rule(expr) {
        if *skip == 0 {
            return Some(Hit {
                expr: local.replacement,
                description: local.description,
                site_span: expr.span,
            });
        }
        *skip -= 1;
    }
    let children = expr.children();
    for (idx, child) in children.iter().enumerate() {
        if let Some(hit) = rewrite_nth(child.expr, skip, rule) {
            let mut rebuilt: Vec<Expr> = children.iter().map(|c| c.expr.clone()).collect();
            rebuilt[idx] = hit.expr;
            return Some(Hit {
                expr: expr.with_children(rebuilt),
                description: hit.description,
                site_span: hit.site_span,
            });
        }
    }
    None
}

#[derive(Clone, Copy)]
enum Rule {
    ConstFold,
    ExtFusion,
    FilterPushdown,
    CseHoist,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::ConstFold => "const-fold",
            Rule::ExtFusion => "ext-fusion",
            Rule::FilterPushdown => "filter-pushdown",
            Rule::CseHoist => "cse-hoist",
        }
    }

    fn try_rewrite(self, expr: &Expr, fold_config: &EvalConfig) -> Option<LocalHit> {
        match self {
            Rule::ConstFold => const_fold(expr, fold_config),
            Rule::ExtFusion => ext_fusion(expr),
            Rule::FilterPushdown => filter_pushdown(expr),
            Rule::CseHoist => cse_hoist(expr),
        }
    }
}

/// Is this node already a value-like literal the folder should leave alone?
fn is_literal(expr: &Expr) -> bool {
    matches!(
        expr.kind,
        ExprKind::Var(_)
            | ExprKind::Lam(..)
            | ExprKind::Unit
            | ExprKind::Bool(_)
            | ExprKind::Const(_)
            | ExprKind::Empty(_)
    )
}

// ---------------------------------------------------------------------------
// Rule 1: constant folding
// ---------------------------------------------------------------------------

fn const_fold(expr: &Expr, fold_config: &EvalConfig) -> Option<LocalHit> {
    if is_literal(expr) || expr.size() < FOLD_MIN_SIZE || !free_vars(expr).is_empty() {
        return None;
    }
    let mut evaluator = Evaluator::new(fold_config.clone());
    let value = evaluator.eval_closed(expr).ok()?;
    // Folded constants take the folded subtree's span.
    let kind = match value {
        Value::Bool(b) => ExprKind::Bool(b),
        v => ExprKind::Const(v),
    };
    let size = expr.size();
    Some(LocalHit {
        replacement: Expr {
            kind,
            span: expr.span,
        },
        description: format!("folded a closed subexpression of {size} nodes to a constant"),
    })
}

// ---------------------------------------------------------------------------
// Rule 2: ext-fusion
// ---------------------------------------------------------------------------

/// Is `h` syntactically injective as a function of `x`? Distinct inputs are
/// then guaranteed distinct outputs, so fusing away the intermediate set
/// cannot multiply the outer map's applications (the work-only-improves
/// argument; the *value* is preserved by union idempotence either way).
fn injective_in(h: &Expr, x: &str) -> bool {
    match &h.kind {
        ExprKind::Var(v) => v == x,
        ExprKind::Pair(a, b) => injective_in(a, x) || injective_in(b, x),
        ExprKind::Singleton(a) => injective_in(a, x),
        _ => false,
    }
}

fn ext_fusion(expr: &Expr) -> Option<LocalHit> {
    let ExprKind::Ext(f, inner) = &expr.kind else {
        return None;
    };
    let ExprKind::Ext(g, s) = &inner.kind else {
        return None;
    };
    let ExprKind::Lam(x, tx, gbody) = &g.kind else {
        return None;
    };
    let ExprKind::Singleton(h) = &gbody.kind else {
        return None;
    };
    let ExprKind::Lam(y, _, fbody) = &f.kind else {
        return None;
    };
    if !injective_in(h, x) || free_vars(f).contains(x.as_str()) {
        return None;
    }
    // ext(f, ext(λx. {h}, s))  ⇒  ext(λx. let y = h in body_f, s).
    // The fused map takes the outer ext's span; the new λ and `let` take the
    // outer function's span; `h` and `body_f` keep their own spans.
    let mut let_body = Expr::let_in(y.clone(), (**h).clone(), (**fbody).clone());
    let_body.span = f.span;
    let mut fused = Expr::lam(x.clone(), tx.clone(), let_body);
    fused.span = f.span;
    let mut out = Expr::ext(fused, (**s).clone());
    out.span = expr.span;
    Some(LocalHit {
        replacement: out,
        description: format!("fused nested ext maps (eliminated the `{x}` intermediate set)"),
    })
}

// ---------------------------------------------------------------------------
// Rule 3: filter pushdown
// ---------------------------------------------------------------------------

/// Statically-empty check local to the pushdown rule: the rejected branch of
/// a filter must contribute nothing.
fn is_empty_branch(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Empty(_) => true,
        ExprKind::Const(Value::Set(s)) => s.is_empty(),
        _ => false,
    }
}

fn filter_pushdown(expr: &Expr) -> Option<LocalHit> {
    let (e, f, u, arg, is_dcr) = match &expr.kind {
        ExprKind::Dcr { e, f, u, arg } => (e, f, u, arg, true),
        ExprKind::Sru { e, f, u, arg } => (e, f, u, arg, false),
        _ => return None,
    };
    // The neutral element must be a size-1 literal: it is re-evaluated once
    // per rejected element, so it has to be cheap and error-free.
    if !is_literal(e) || matches!(e.kind, ExprKind::Lam(..) | ExprKind::Var(_)) {
        return None;
    }
    let ExprKind::Ext(p, s) = &arg.kind else {
        return None;
    };
    let ExprKind::Lam(x, tx, pbody) = &p.kind else {
        return None;
    };
    let ExprKind::If(cond, then_b, else_b) = &pbody.kind else {
        return None;
    };
    let ExprKind::Singleton(keep) = &then_b.kind else {
        return None;
    };
    if !matches!(&keep.kind, ExprKind::Var(v) if v == x) || !is_empty_branch(else_b) {
        return None;
    }
    let ExprKind::Lam(y, _, fbody) = &f.kind else {
        return None;
    };
    if free_vars(f).contains(x.as_str()) {
        return None;
    }
    // dcr(e, f, u)(ext(λx. if c then {x} else ∅, s))
    //   ⇒ dcr(e, λx. if c then (let y = x in body_f) else e, u)(s)
    // sound because the recursor's well-formedness precondition makes `e`
    // the identity of `u`, so rejected elements contribute nothing to the
    // combining tree. The new λ and `let` take the old leaf function's span;
    // the `if` keeps the filter body's span.
    let mut kept = Expr::let_in(y.clone(), (**keep).clone(), (**fbody).clone());
    kept.span = f.span;
    let mut body = Expr::ite((**cond).clone(), kept, (**e).clone());
    body.span = pbody.span;
    let mut leaf = Expr::lam(x.clone(), tx.clone(), body);
    leaf.span = f.span;
    let rebuilt = if is_dcr {
        Expr::dcr((**e).clone(), leaf, (**u).clone(), (**s).clone())
    } else {
        Expr::sru((**e).clone(), leaf, (**u).clone(), (**s).clone())
    };
    let mut out = rebuilt;
    out.span = expr.span;
    Some(LocalHit {
        replacement: out,
        description: format!(
            "pushed the `{x}` filter into the {} leaf body",
            if is_dcr { "dcr" } else { "sru" }
        ),
    })
}

// ---------------------------------------------------------------------------
// Rule 4: common-subexpression hoisting
// ---------------------------------------------------------------------------

/// A guaranteed lower bound on the runtime cardinality of a set expression,
/// from syntax alone: literal sets are exact, a union is at least as big as
/// either side, everything else is 0.
fn syntactic_min_card(e: &Expr) -> u64 {
    match &e.kind {
        ExprKind::Const(Value::Set(s)) => s.len() as u64,
        ExprKind::Singleton(_) => 1,
        ExprKind::Union(a, b) => syntactic_min_card(a).max(syntactic_min_card(b)),
        _ => 0,
    }
}

/// How many times is the iterated arm guaranteed to run, given the
/// argument's guaranteed minimum cardinality?
fn min_applications(kind: &ExprKind, min_card: u64) -> u64 {
    match kind {
        // The combining tree over m leaves makes m − 1 combiner calls.
        ExprKind::Dcr { .. } | ExprKind::Sru { .. } | ExprKind::BDcr { .. } => {
            min_card.saturating_sub(1)
        }
        // One insert step per (distinct) element.
        ExprKind::Sri { .. } | ExprKind::Esr { .. } | ExprKind::BSri { .. } => min_card,
        // One application per element / per logarithmic round.
        ExprKind::Loop { .. } | ExprKind::BLoop { .. } => min_card,
        ExprKind::LogLoop { .. } | ExprKind::BLogLoop { .. } => log_rounds(min_card as usize),
        _ => 0,
    }
}

/// The set argument whose cardinality drives the iterated arm.
fn iterated_arg(kind: &ExprKind) -> Option<&Expr> {
    match kind {
        ExprKind::Dcr { arg, .. }
        | ExprKind::Sru { arg, .. }
        | ExprKind::BDcr { arg, .. }
        | ExprKind::Sri { arg, .. }
        | ExprKind::Esr { arg, .. }
        | ExprKind::BSri { arg, .. } => Some(arg),
        ExprKind::Loop { set, .. }
        | ExprKind::BLoop { set, .. }
        | ExprKind::LogLoop { set, .. }
        | ExprKind::BLogLoop { set, .. } => Some(set),
        _ => None,
    }
}

/// Search the unconditional spine of an iterated arm for a subexpression
/// worth hoisting: at least [`CSE_MIN_SIZE`] nodes, not a literal, and with
/// no free variable bound between the arm root and the occurrence (so the
/// hoisted `let` sees the same environment). "Unconditional" stops at `if`
/// branches and at any λ-body below the arm's own binder — positions that
/// may never run.
fn find_hoistable(arm: &Expr) -> Option<Expr> {
    fn search(e: &Expr, binders: &mut Vec<String>, root: bool) -> Option<Expr> {
        if !root
            && !is_literal(e)
            && e.size() >= CSE_MIN_SIZE
            && free_vars(e).iter().all(|v| !binders.contains(v))
        {
            return Some(e.clone());
        }
        match &e.kind {
            ExprKind::Lam(x, _, body) if root => {
                binders.push(x.clone());
                let found = search(body, binders, false);
                binders.pop();
                found
            }
            // A λ below the arm root is a value; its body may never run.
            ExprKind::Lam(..) => None,
            ExprKind::Let(x, rhs, body) => {
                if let Some(found) = search(rhs, binders, false) {
                    return Some(found);
                }
                binders.push(x.clone());
                let found = search(body, binders, false);
                binders.pop();
                found
            }
            // Only the condition of an `if` is unconditionally evaluated.
            ExprKind::If(c, _, _) => search(c, binders, false),
            _ => {
                for child in e.children() {
                    debug_assert!(child.binds.is_none(), "binding shapes handled above");
                    if let Some(found) = search(child.expr, binders, false) {
                        return Some(found);
                    }
                }
                None
            }
        }
    }
    search(arm, &mut Vec::new(), true)
}

/// Replace every occurrence of `sub` (structural equality) with a reference
/// to `var`, skipping scopes whose binder shadows one of `sub`'s free
/// variables. Each replacement keeps the occurrence's own span.
fn replace_equal(e: &Expr, sub: &Expr, var: &str, sub_free: &BTreeSet<String>) -> Expr {
    if e == sub {
        return Expr {
            kind: ExprKind::Var(var.to_string()),
            span: e.span,
        };
    }
    let children = e.children();
    if children.is_empty() {
        return e.clone();
    }
    let rebuilt: Vec<Expr> = children
        .iter()
        .map(|c| {
            if c.binds.is_some_and(|b| sub_free.contains(b)) {
                c.expr.clone()
            } else {
                replace_equal(c.expr, sub, var, sub_free)
            }
        })
        .collect();
    e.with_children(rebuilt)
}

fn cse_hoist(expr: &Expr) -> Option<LocalHit> {
    let arg = iterated_arg(&expr.kind)?;
    let min_card = syntactic_min_card(arg);
    if min_applications(&expr.kind, min_card) < 2 {
        return None;
    }
    let sub = expr
        .children()
        .into_iter()
        .filter(|c| c.iterated)
        .find_map(|c| find_hoistable(c.expr))?;
    let sub_free: BTreeSet<String> = free_vars(&sub);
    let name = fresh_var("cse");
    let replaced = replace_equal(expr, &sub, &name, &sub_free);
    // The hoisted `let` takes the recursor's span; the bound subexpression
    // keeps its own spans.
    let mut out = Expr::let_in(name, sub.clone(), replaced);
    out.span = expr.span;
    Some(LocalHit {
        replacement: out,
        description: format!(
            "hoisted a repeated {}-node subexpression out of the iterated arm",
            sub.size()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_closed;

    fn cfg() -> EvalConfig {
        EvalConfig::default()
    }

    fn opt(e: &Expr) -> RewriteOutcome {
        optimize(e, &[], &cfg())
    }

    #[test]
    fn folds_a_closed_union_to_a_constant() {
        let e = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::atom(2)),
        );
        let out = opt(&e);
        assert!(matches!(out.expr.kind, ExprKind::Const(_)));
        assert!(out.fired.iter().any(|f| f.rule == "const-fold"));
        assert_eq!(eval_closed(&out.expr).unwrap(), eval_closed(&e).unwrap());
    }

    #[test]
    fn folding_keeps_the_folded_subtrees_span() {
        let span = Span::new(3, 9);
        let e = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::atom(2)),
        )
        .at(span);
        let out = opt(&e);
        assert_eq!(out.expr.span, Some(span));
    }

    #[test]
    fn does_not_fold_open_expressions() {
        let e = Expr::union(Expr::var("r"), Expr::singleton(Expr::atom(1)));
        let schema = vec![("r".to_string(), Type::set(Type::Base))];
        let out = optimize(&e, &schema, &cfg());
        // The open union survives; only the closed singleton folds.
        assert!(matches!(out.expr.kind, ExprKind::Union(..)));
    }

    #[test]
    fn fuses_nested_injective_ext_maps() {
        // ext(λy. {y}, ext(λx. {(x, x)}, s)) over a literal set.
        let s = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::atom(2)),
        );
        let inner = Expr::ext(
            Expr::lam(
                "x",
                Type::Base,
                Expr::singleton(Expr::pair(Expr::var("x"), Expr::var("x"))),
            ),
            Expr::var("s"),
        );
        let outer = Expr::ext(
            Expr::lam(
                "y",
                Type::prod(Type::Base, Type::Base),
                Expr::singleton(Expr::proj1(Expr::var("y"))),
            ),
            inner,
        );
        let schema = vec![("s".to_string(), Type::set(Type::Base))];
        let out = optimize(&outer, &schema, &cfg());
        assert!(
            out.fired.iter().any(|f| f.rule == "ext-fusion"),
            "fired: {:?}",
            out.fired
        );
        // Differential check on a concrete s.
        let bindings = |e: &Expr| Expr::let_in("s", s.clone(), e.clone());
        assert_eq!(
            eval_closed(&bindings(&out.expr)).unwrap(),
            eval_closed(&bindings(&outer)).unwrap()
        );
    }

    #[test]
    fn fusion_skips_non_injective_inner_maps() {
        // Inner map collapses everything to one atom — not injective.
        let inner = Expr::ext(
            Expr::lam("x", Type::Base, Expr::singleton(Expr::atom(7))),
            Expr::var("s"),
        );
        let outer = Expr::ext(
            Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
            inner,
        );
        let schema = vec![("s".to_string(), Type::set(Type::Base))];
        let out = optimize(&outer, &schema, &cfg());
        assert!(out.fired.iter().all(|f| f.rule != "ext-fusion"));
    }

    #[test]
    fn pushes_a_filter_into_the_dcr_leaf() {
        // dcr(∅, λv. {v}, λp. π₁p ∪ π₂p)(ext(λx. if x ≤ @1 then {x} else ∅, s))
        let filter = Expr::lam(
            "x",
            Type::Base,
            Expr::ite(
                Expr::leq(Expr::var("x"), Expr::atom(1)),
                Expr::singleton(Expr::var("x")),
                Expr::empty(Type::Base),
            ),
        );
        let e = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("v", Type::Base, Expr::singleton(Expr::var("v"))),
            Expr::lam(
                "p",
                Type::prod(Type::set(Type::Base), Type::set(Type::Base)),
                Expr::union(Expr::proj1(Expr::var("p")), Expr::proj2(Expr::var("p"))),
            ),
            Expr::ext(filter, Expr::var("s")),
        );
        let schema = vec![("s".to_string(), Type::set(Type::Base))];
        let out = optimize(&e, &schema, &cfg());
        assert!(
            out.fired.iter().any(|f| f.rule == "filter-pushdown"),
            "fired: {:?}",
            out.fired
        );
        // The arg of the rewritten dcr is now the bare relation.
        let with_s = |q: &Expr| {
            Expr::let_in(
                "s",
                Expr::union(
                    Expr::singleton(Expr::atom(0)),
                    Expr::union(
                        Expr::singleton(Expr::atom(1)),
                        Expr::singleton(Expr::atom(5)),
                    ),
                ),
                q.clone(),
            )
        };
        assert_eq!(
            eval_closed(&with_s(&out.expr)).unwrap(),
            eval_closed(&with_s(&e)).unwrap()
        );
    }

    #[test]
    fn hoists_a_repeated_subexpression_out_of_the_combiner() {
        // The combiner recomputes `card(r)`-style work per call; with a
        // 9-element literal argument the tree makes 8 combiner calls across
        // 4 levels, enough that the hoist pays for itself in *both* work and
        // span (the added `let` costs one sequential step, so a shallow tree
        // would trip the span half of the gate). The repeated sub is open in
        // the schema but closed under the combiner's binders.
        let heavy = Expr::extern_call(
            "nat_add",
            vec![
                Expr::extern_call("card", vec![Expr::var("r")]),
                Expr::extern_call(
                    "nat_add",
                    vec![
                        Expr::extern_call("card", vec![Expr::var("r")]),
                        Expr::extern_call("card", vec![Expr::var("r")]),
                    ],
                ),
            ],
        );
        let e = Expr::dcr(
            Expr::nat(0),
            Expr::lam("v", Type::Base, Expr::nat(1)),
            Expr::lam(
                "p",
                Type::prod(Type::Nat, Type::Nat),
                Expr::extern_call(
                    "nat_add",
                    vec![
                        Expr::extern_call(
                            "nat_add",
                            vec![Expr::proj1(Expr::var("p")), Expr::proj2(Expr::var("p"))],
                        ),
                        heavy.clone(),
                    ],
                ),
            ),
            Expr::constant(Value::atom_set(1..10)),
        );
        let schema = vec![("r".to_string(), Type::set(Type::Base))];
        let out = optimize(&e, &schema, &cfg());
        assert!(
            out.fired.iter().any(|f| f.rule == "cse-hoist"),
            "fired: {:?}",
            out.fired
        );
        let with_r = |q: &Expr| {
            Expr::let_in(
                "r",
                Expr::union(
                    Expr::singleton(Expr::atom(10)),
                    Expr::singleton(Expr::atom(11)),
                ),
                q.clone(),
            )
        };
        assert_eq!(
            eval_closed(&with_r(&out.expr)).unwrap(),
            eval_closed(&with_r(&e)).unwrap()
        );
    }

    #[test]
    fn optimize_is_idempotent_on_its_own_output() {
        let e = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::atom(2)),
        );
        let once = opt(&e);
        let twice = opt(&once.expr);
        assert_eq!(once.expr, twice.expr);
        assert!(twice.fired.is_empty(), "fired again: {:?}", twice.fired);
    }
}
