//! Optimizer differential suite: every query in the `ncql-queries` corpus is
//! prepared through the engine twice — once at `OptLevel::None` (the raw
//! typed AST) and once at `OptLevel::Default` (the cost-gated algebraic
//! rewriter) — and executed on the sequential backend and on the parallel
//! backend across pool sizes, asserting the optimizer's whole contract:
//!
//! * values are bit-identical with the optimizer on vs off, on every backend;
//! * measured `work` never regresses on plans that complete;
//! * the static work bound never regresses, and on a healthy corpus a
//!   meaningful number of queries get a *strictly* lower bound.

use ncql::core::parallelism_from_env;
use ncql::queries::differential_corpus;
use ncql::{OptLevel, Session, SessionBuilder};

/// The `(parallelism, pool_threads)` ladder: sequential plus 4-way parallel
/// with the pool sized at the fan-out and oversubscribed, plus whatever the
/// CI matrix asks for via `NCQL_TEST_PARALLELISM`.
fn backend_configs() -> Vec<(Option<usize>, Option<usize>)> {
    let mut configs = vec![(None, None), (Some(4), Some(1)), (Some(4), Some(4))];
    if let Some(n) = parallelism_from_env() {
        if n >= 2 && !configs.contains(&(Some(n), None)) {
            configs.push((Some(n), None));
        }
    }
    configs
}

fn session(opt: OptLevel, parallelism: Option<usize>, pool_threads: Option<usize>) -> Session {
    SessionBuilder::new()
        .opt_level(opt)
        .parallelism(parallelism)
        .pool_threads(pool_threads)
        .parallel_cutoff(64)
        .build()
}

#[test]
fn corpus_values_are_invariant_and_work_only_improves() {
    let corpus = differential_corpus();
    assert!(
        corpus.len() >= 49,
        "corpus unexpectedly small: {}",
        corpus.len()
    );
    let mut strictly_lower_bounds: Vec<String> = Vec::new();
    for (parallelism, pool_threads) in backend_configs() {
        let raw_session = session(OptLevel::None, parallelism, pool_threads);
        let opt_session = session(OptLevel::Default, parallelism, pool_threads);
        let mut prepared = 0usize;
        for entry in &corpus {
            // A few corpus entries deliberately outrun the type checker (the
            // corpus-lint suite tolerates the same set); the optimizer runs
            // after typecheck, so it must see exactly the same rejections.
            let raw = match raw_session.prepare_expr(entry.expr.clone()) {
                Ok(q) => q,
                Err(ncql::Error::Type(_)) => {
                    assert!(
                        matches!(
                            opt_session.prepare_expr(entry.expr.clone()),
                            Err(ncql::Error::Type(_))
                        ),
                        "{}: the optimizer changed a type-check rejection",
                        entry.name
                    );
                    continue;
                }
                Err(e) => panic!("{}: raw prepare failed: {e}", entry.name),
            };
            prepared += 1;
            let opt = opt_session
                .prepare_expr(entry.expr.clone())
                .unwrap_or_else(|e| panic!("{}: optimized prepare failed: {e}", entry.name));
            let raw_out = raw_session
                .execute(&raw)
                .unwrap_or_else(|e| panic!("{}: raw execute failed: {e}", entry.name));
            let opt_out = opt_session
                .execute(&opt)
                .unwrap_or_else(|e| panic!("{}: optimized execute failed: {e}", entry.name));
            assert_eq!(
                opt_out.value, raw_out.value,
                "{}: optimization changed the value at parallelism {parallelism:?}",
                entry.name
            );
            assert!(
                opt_out.stats.work <= raw_out.stats.work,
                "{}: optimization regressed measured work ({} > {}) at parallelism \
                 {parallelism:?}",
                entry.name,
                opt_out.stats.work,
                raw_out.stats.work
            );
            // The static gate's own promise: the rewritten plan's work bound
            // is pointwise no worse than the raw plan's. Corpus queries are
            // closed, so both bounds are concrete numbers.
            let raw_bound = raw.analysis().cost.work.eval_closed();
            let opt_bound = opt.analysis().cost.work.eval_closed();
            if let (Some(rb), Some(ob)) = (raw_bound, opt_bound) {
                assert!(
                    ob <= rb,
                    "{}: optimization regressed the static work bound ({ob} > {rb})",
                    entry.name
                );
                if parallelism.is_none() && ob < rb {
                    strictly_lower_bounds.push(format!("{}: {rb} -> {ob}", entry.name));
                }
            }
        }
        assert!(
            prepared >= 49,
            "too few corpus entries prepared ({prepared}) at parallelism {parallelism:?}"
        );
    }
    // Acceptance: a healthy rule set strictly improves a meaningful slice of
    // the corpus, not just one lucky query.
    assert!(
        strictly_lower_bounds.len() >= 3,
        "expected at least 3 corpus queries with strictly lower static work bounds, got: \
         {strictly_lower_bounds:?}"
    );
}

#[test]
fn optimized_plans_report_their_rewrites_consistently() {
    // Plumbing coherence on the whole corpus: a plan claims rewrites exactly
    // when its executing form differs from its normal form, and `raw_cost`
    // is present exactly when something fired.
    let opt_session = session(OptLevel::Default, None, None);
    let mut fired_total = 0usize;
    for entry in differential_corpus() {
        let q = match opt_session.prepare_expr(entry.expr.clone()) {
            Ok(q) => q,
            Err(ncql::Error::Type(_)) => continue,
            Err(e) => panic!("{}: prepare failed: {e}", entry.name),
        };
        assert_eq!(q.opt_level(), OptLevel::Default, "{}", entry.name);
        assert_eq!(
            q.rewrites().is_empty(),
            q.raw_cost().is_none(),
            "{}: raw_cost must be kept iff a rewrite fired",
            entry.name
        );
        if q.rewrites().is_empty() {
            assert_eq!(
                q.optimized_form(),
                q.normal_form(),
                "{}: nothing fired, so the executing plan is the raw plan",
                entry.name
            );
        }
        fired_total += q.rewrites().len();
    }
    assert!(
        fired_total > 0,
        "the optimizer fired on nothing in the whole corpus"
    );
}
