//! The experiment harness itself is tested end-to-end: the quick sweep of every
//! experiment must run and reproduce the qualitative shapes recorded in
//! EXPERIMENTS.md.

#[test]
fn quick_experiment_sweep_reproduces_the_expected_shapes() {
    let tables = ncql_bench_harness();
    ncql_check(&tables);
}

fn ncql_bench_harness() -> Vec<ncql_bench::Table> {
    ncql_bench::run_all_quick()
}

fn ncql_check(tables: &[ncql_bench::Table]) {
    ncql_bench::check_shapes(tables).expect("the qualitative shapes of EXPERIMENTS.md must hold");
    // Every table renders without panicking and mentions its experiment id.
    for t in tables {
        let text = t.to_string();
        assert!(text.contains(t.id));
    }
}
