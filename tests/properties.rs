//! Property-based tests (proptest) for the core invariants: canonical set
//! semantics, encoding round-trips, order-invariance of well-formed `dcr`
//! instances, equivalence of the evaluation strategies, and genericity.

use ncql::core::derived;
use ncql::core::eval::eval_closed;
use ncql::core::expr::Expr;
use ncql::object::encoding::{decode, encode, minimal_encoding};
use ncql::object::morphism::Morphism;
use ncql::object::{Type, VSet, Value};
use ncql::queries::{graph, parity, Relation};
use ncql::translate::prop73::HalvingSimulator;
use proptest::prelude::*;

fn arb_atoms() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..200, 0..40)
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..12, 0u64..12), 0..30)
}

/// A generator of complex object values of a fixed nested type.
fn arb_nested_value() -> impl Strategy<Value = Value> {
    // Type: {(atom × {bool})}
    let inner = proptest::collection::vec(any::<bool>(), 0..4)
        .prop_map(|bs| Value::set_from(bs.into_iter().map(Value::Bool)));
    let pair = (0u64..50, inner).prop_map(|(a, s)| Value::pair(Value::Atom(a), s));
    proptest::collection::vec(pair, 0..6).prop_map(Value::set_from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn set_union_is_commutative_associative_idempotent(a in arb_atoms(), b in arb_atoms(), c in arb_atoms()) {
        let (sa, sb, sc) = (
            VSet::from_iter(a.into_iter().map(Value::Atom)),
            VSet::from_iter(b.into_iter().map(Value::Atom)),
            VSet::from_iter(c.into_iter().map(Value::Atom)),
        );
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sb).union(&sc), sa.union(&sb.union(&sc)));
        prop_assert_eq!(sa.union(&sa), sa.clone());
        prop_assert!(sa.intersect(&sb).is_subset_of(&sa));
        prop_assert!(sa.difference(&sb).intersect(&sb).is_empty());
    }

    #[test]
    fn encoding_round_trips_for_flat_relations(pairs in arb_pairs()) {
        let v = Value::relation_from_pairs(pairs);
        let s = encode(&v);
        let back = decode(&s, &Type::binary_relation()).unwrap();
        prop_assert_eq!(back, v.clone());
        // Blank-scattered encodings decode to the same value.
        let blanked = s.with_scattered_blanks();
        prop_assert_eq!(decode(&blanked, &Type::binary_relation()).unwrap(), v.clone());
        // Minimal encodings renumber atoms 0..m-1 and decode to an isomorphic copy.
        let (min, map) = minimal_encoding(&v);
        let decoded = decode(&min, &Type::binary_relation()).unwrap();
        prop_assert_eq!(decoded.atoms().len(), map.len());
    }

    #[test]
    fn encoding_round_trips_for_nested_values(v in arb_nested_value()) {
        let ty = Type::set(Type::prod(Type::Base, Type::set(Type::Bool)));
        prop_assert!(v.has_type(&ty));
        let s = encode(&v);
        prop_assert_eq!(decode(&s, &ty).unwrap(), v);
    }

    #[test]
    fn parity_strategies_agree_and_match_cardinality(atoms in arb_atoms()) {
        let v = Value::atom_set(atoms);
        let expected = Value::Bool(v.cardinality().unwrap() % 2 == 1);
        let input = Expr::constant(v);
        prop_assert_eq!(eval_closed(&parity::parity_dcr(input.clone())).unwrap(), expected.clone());
        prop_assert_eq!(eval_closed(&parity::parity_esr(input.clone())).unwrap(), expected.clone());
        prop_assert_eq!(eval_closed(&parity::parity_loop(input)).unwrap(), expected);
    }

    #[test]
    fn transitive_closure_strategies_agree_with_baseline(pairs in arb_pairs()) {
        let rel = Relation::from_pairs(pairs);
        let expected = rel.transitive_closure().to_value();
        let r = Expr::constant(rel.to_value());
        prop_assert_eq!(eval_closed(&graph::tc_dcr(r.clone())).unwrap(), expected.clone());
        prop_assert_eq!(eval_closed(&graph::tc_log_loop(r)).unwrap(), expected);
    }

    #[test]
    fn halving_simulation_is_order_invariant(atoms in arb_atoms()) {
        // dcr with the union combiner: the halving strategy must give the same
        // answer as the direct balanced-tree evaluation, for any input.
        let v = Value::atom_set(atoms);
        let f = Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")));
        let u = derived::union_combiner(Type::Base);
        let direct = eval_closed(&Expr::dcr(
            Expr::empty(Type::Base),
            f.clone(),
            u.clone(),
            Expr::constant(v.clone()),
        ))
        .unwrap();
        let mut sim = HalvingSimulator::default();
        let outcome = sim.dcr_by_halving(&Expr::empty(Type::Base), &f, &u, &v).unwrap();
        prop_assert_eq!(direct.clone(), outcome.value);
        prop_assert_eq!(direct, v);
    }

    #[test]
    fn generic_queries_commute_with_morphisms(pairs in arb_pairs(), offset in 1u64..1000) {
        let rel = Relation::from_pairs(pairs);
        let input = rel.to_value();
        let phi = Morphism::shift(&input.atoms(), offset);
        let lhs = phi.apply(&eval_closed(&graph::tc_dcr(Expr::constant(input.clone()))).unwrap());
        let rhs = eval_closed(&graph::tc_dcr(Expr::constant(phi.apply(&input)))).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn nest_unnest_round_trips(pairs in arb_pairs()) {
        let v = Value::relation_from_pairs(pairs);
        let nested = derived::nest(Type::Base, Type::Base, Expr::constant(v.clone()));
        let back = derived::unnest(Type::Base, Type::Base, nested);
        prop_assert_eq!(eval_closed(&back).unwrap(), v);
    }

    #[test]
    fn derived_set_operations_match_native_semantics(a in arb_atoms(), b in arb_atoms()) {
        let va = Value::atom_set(a.clone());
        let vb = Value::atom_set(b.clone());
        let native_inter: Value = Value::set_from(
            va.as_set().unwrap().intersect(vb.as_set().unwrap()).into_vec(),
        );
        let native_diff: Value = Value::set_from(
            va.as_set().unwrap().difference(vb.as_set().unwrap()).into_vec(),
        );
        let inter = derived::intersect(Type::Base, Expr::constant(va.clone()), Expr::constant(vb.clone()));
        let diff = derived::difference(Type::Base, Expr::constant(va), Expr::constant(vb));
        prop_assert_eq!(eval_closed(&inter).unwrap(), native_inter);
        prop_assert_eq!(eval_closed(&diff).unwrap(), native_diff);
    }
}
