//! Print every experiment table (the series the repository reproduces in place
//! of the paper's — nonexistent — empirical tables).
//!
//! Usage: `cargo run -p ncql-bench --bin report [--full]`
//!
//! The default run uses small, laptop-friendly parameter sweeps; `--full` uses
//! the larger sweeps quoted in EXPERIMENTS.md.

use ncql_bench as bench;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("NCQL experiment report — reproducing Suciu & Breazu-Tannen, \"A Query Language for NC\" (1994)");
    println!("mode: {}\n", if full { "full" } else { "quick" });

    let tables = if full {
        vec![
            bench::e1_parity(&[16, 64, 256, 1024, 4096]),
            bench::e2_transitive_closure(&[8, 16, 32, 64, 96]),
            bench::e3_recursion_translations(&[16, 64, 128, 256]),
            bench::e4_bounded_dcr(&[4, 8, 16, 24]),
            bench::e5_dcr_logloop(&[1, 4, 9, 33, 100, 513, 2048]),
            bench::e6_circuit_depth(&[1, 2, 3], &[4, 8, 16, 32]),
            bench::e7_ptime_vs_nc(&[16, 32, 48], 8),
            bench::e8_bounded_vs_unbounded(&[4, 8, 12, 16, 20], 1 << 14),
            bench::e8b_arithmetic_blowup(&[8, 16, 32, 48]),
            bench::e9_encoding_gadgets(&[2, 4, 8, 16]),
            bench::e10_uniformity(&[2, 3, 4, 5, 6]),
            bench::e11_iteration_nesting(&[3, 7, 16, 33, 100]),
            bench::e12_wellformedness(),
        ]
    } else {
        bench::run_all_quick()
    };

    for table in &tables {
        println!("{table}");
    }

    // E14 (serving latency) runs outside `check_shapes`: wall-clock numbers
    // are machine-dependent, so the gate is only "zero errors" (asserted
    // inside e14_serve_latency). The largest run's summary is persisted to
    // BENCH_serve.json, the same payload the ncql-loadgen binary writes.
    let (serve_table, serve_payload) = if full {
        bench::e14_serve_latency(&[2, 8, 32], 25)
    } else {
        bench::e14_serve_latency(&[2, 8], 10)
    };
    println!("{serve_table}");
    match std::fs::write("BENCH_serve.json", &serve_payload) {
        Ok(()) => println!("wrote BENCH_serve.json\n"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}\n"),
    }

    // E15 (columnar set representation) also runs outside `check_shapes`:
    // the ratios are machine-dependent, while the hard invariant — all
    // canonicalization and merge paths produce the identical set — is
    // asserted inside e15_columnar. The measured numbers are persisted to
    // BENCH_columnar.json.
    let (columnar_table, columnar_payload) = if full {
        bench::e15_columnar(&[50_000, 200_000], 16)
    } else {
        bench::e15_columnar(&[20_000, 80_000], 16)
    };
    println!("{columnar_table}");
    match std::fs::write("BENCH_columnar.json", &columnar_payload) {
        Ok(()) => println!("wrote BENCH_columnar.json\n"),
        Err(e) => eprintln!("could not write BENCH_columnar.json: {e}\n"),
    }

    // E16 (compiled row kernels) is wall-clock too: the hard invariant — the
    // kernel and interpreted arms are bit-identical in value and statistics —
    // is asserted inside e16_kernels; the measured speedups are persisted to
    // BENCH_kernel.json.
    let (kernel_table, kernel_payload) = if full {
        bench::e16_kernels(&[50_000, 200_000], 8)
    } else {
        bench::e16_kernels(&[20_000, 80_000], 4)
    };
    println!("{kernel_table}");
    match std::fs::write("BENCH_kernel.json", &kernel_payload) {
        Ok(()) => println!("wrote BENCH_kernel.json\n"),
        Err(e) => eprintln!("could not write BENCH_kernel.json: {e}\n"),
    }

    match bench::check_shapes(&tables) {
        Ok(()) => {
            println!("All qualitative shapes hold (see EXPERIMENTS.md for the expected shapes).")
        }
        Err(e) => {
            eprintln!("SHAPE CHECK FAILED: {e}");
            std::process::exit(1);
        }
    }
}
