//! Complex objects: nested relations, nest/unnest, bounded recursion (`bdcr`)
//! and the powerset blow-up that motivates it (§2, Theorem 6.1).
//!
//! Run with: `cargo run --example complex_objects`

use ncql::core::derived;
use ncql::core::eval::{eval_with_stats, EvalConfig, Evaluator};
use ncql::core::expr::Expr;
use ncql::core::typecheck;
use ncql::core::EvalError;
use ncql::object::{Type, Value};
use ncql::queries::{datagen, powerset};

fn main() {
    // A nested "document store": a set of (group, sub-relation) pairs.
    let store = datagen::document_store(4, 6, 7);
    let store_ty = Type::set(Type::prod(Type::Base, Type::binary_relation()));
    assert!(store.has_type(&store_ty));
    println!("document store ({} groups): {store}", store.cardinality().unwrap_or(0));

    // Unnest it into a flat relation of (group, edge) pairs and project.
    let unnested = derived::unnest(
        Type::Base,
        Type::prod(Type::Base, Type::Base),
        Expr::Const(store.clone()),
    );
    let ty = typecheck::typecheck_closed(&unnested).expect("unnest typechecks");
    let (flat, _) = eval_with_stats(&unnested).expect("unnest evaluates");
    println!("\nunnested to type {ty}: {} tuples", flat.cardinality().unwrap_or(0));

    // Re-nest by group and check we recover a set of groups of the same size.
    let renested = derived::nest(
        Type::Base,
        Type::prod(Type::Base, Type::Base),
        Expr::Const(flat.clone()),
    );
    let (grouped, _) = eval_with_stats(&renested).expect("nest evaluates");
    println!("re-nested into {} groups", grouped.cardinality().unwrap_or(0));

    // Powerset via unbounded dcr explodes: with a resource limit the evaluator
    // reports the blow-up instead of exhausting memory.
    let input = Expr::Const(Value::atom_set(0..18));
    let mut limited = Evaluator::new(EvalConfig {
        max_set_size: 4096,
        ..EvalConfig::default()
    });
    match limited.eval_closed(&powerset::powerset_dcr(input.clone())) {
        Err(EvalError::SetTooLarge { limit, attempted }) => println!(
            "\nunbounded powerset of an 18-element set: aborted \
             (intermediate set of {attempted} elements exceeds the limit {limit})"
        ),
        other => println!("\nunexpected outcome: {other:?}"),
    }

    // The bounded variant (bdcr) stays within the bound, as Theorem 6.1 requires.
    let mut bounded_eval = Evaluator::new(EvalConfig {
        max_set_size: 4096,
        ..EvalConfig::default()
    });
    let bounded = bounded_eval
        .eval_closed(&powerset::bounded_small_subsets(input))
        .expect("bounded recursion stays within the limit");
    println!(
        "bounded recursion over the same set: {} subsets, largest intermediate set {}",
        bounded.cardinality().unwrap_or(0),
        bounded_eval.stats().max_set_size
    );

    // Small powersets are still fine, and exact.
    let (small, stats) =
        eval_with_stats(&powerset::powerset_dcr(Expr::Const(Value::atom_set(0..6))))
            .expect("small powerset");
    println!(
        "\npowerset of a 6-element set: {} subsets (work {}, span {})",
        small.cardinality().unwrap_or(0),
        stats.work,
        stats.span
    );
}
