//! The one error type at the engine's API boundary.
//!
//! The workspace grew three unrelated error enums — [`ParseError`] from the
//! surface crate (which itself wraps the lexer's positioned [`LexError`]),
//! [`TypeError`] from the type checker, and [`EvalError`] from the evaluator —
//! plus [`ObjectError`] from the object model. Every consumer of the old
//! scattered entry points had to match on whichever subset its hand-wired
//! pipeline could produce. [`Error`] folds them into a single enum with
//! `Display` and `std::error::Error` implementations, so a `Session` caller
//! handles one type end to end — and, since every layer now threads byte
//! [`Span`]s from the lexer through the AST, [`Error::span`] locates the
//! failure in the query text for *all* variants, not just lex/parse. Use
//! [`Error::render`] to turn that span into a human-readable caret snippet.

use crate::diagnostics::Diagnostic;
use ncql_core::{EvalError, Span, TypeError};
use ncql_object::ObjectError;
use ncql_surface::{LexError, ParseError};
use std::fmt;

/// Any error the engine's prepare → execute pipeline can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The query text failed to lex or parse. Carries the surface crate's
    /// error, including the byte span the lexer/parser recorded.
    Parse(ParseError),
    /// The parsed query failed to type-check against the session's registry Σ.
    /// Carries the span of the offending node.
    Type(TypeError),
    /// Evaluation failed (stuck term, extern failure, resource limit, worker
    /// panic). Carries the span of the failing subexpression.
    Eval(EvalError),
    /// An object-model operation failed (value typing, encoding/decoding,
    /// execution-time binding validation).
    Object {
        /// The object-model error.
        source: ObjectError,
        /// For binding-validation failures: the span of the schema variable's
        /// use site in the prepared query's source text.
        span: Option<Span>,
    },
    /// The prepare-time static analysis produced a deny-level lint finding
    /// and the session's lint policy is
    /// [`LintPolicy::Deny`](crate::LintPolicy): the query is rejected before
    /// any evaluation. Carries the first deny finding's message (prefixed
    /// with its stable lint name) and the offending node's span.
    Lint {
        /// `<lint-name>: <finding message>`.
        message: String,
        /// The span of the offending node in the query text.
        span: Option<Span>,
    },
}

impl Error {
    /// The byte span in the query text at which the error was detected, when
    /// one is known — the lexer's or parser's own span for front-end
    /// failures, the offending AST node's span for type errors, the failing
    /// subexpression's span for evaluation errors, and the schema variable's
    /// use site for binding-validation errors. `None` only for errors raised
    /// from programmatically built (span-less) expressions or for object
    /// errors with no associated source location.
    pub fn span(&self) -> Option<Span> {
        match self {
            Error::Parse(e) => Some(e.span()),
            Error::Type(e) => e.span,
            Error::Eval(e) => e.span(),
            Error::Object { span, .. } => *span,
            Error::Lint { span, .. } => *span,
        }
    }

    /// The byte offset at which the error was detected: the start of
    /// [`Error::span`]. Lex and parse failures report the same unit (byte
    /// offsets into the query text) since the parser's token spans come from
    /// the lexer.
    pub fn position(&self) -> Option<usize> {
        self.span().map(|s| s.start)
    }

    /// The diagnostic for this error against the source text it was raised
    /// from: the message plus, when the error is located, the 1-based
    /// line/column and a single-line caret snippet.
    pub fn diagnostic(&self, source: &str) -> Diagnostic {
        Diagnostic::new(self.to_string(), self.span(), source)
    }

    /// Render the error as a caret diagnostic against `source` — the query
    /// text this error was produced from (see [`crate::Session::prepare`]).
    ///
    /// ```
    /// use ncql_engine::Session;
    ///
    /// let session = Session::new();
    /// let text = "{@1} union {true}";
    /// let err = session.prepare(text).unwrap_err();
    /// let rendered = err.render(text);
    /// assert!(rendered.contains("^"), "{rendered}");
    /// ```
    pub fn render(&self, source: &str) -> String {
        self.diagnostic(source).to_string()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Lex/parse errors already self-describe ("lex error at byte N",
            // "parse error at byte N"), so no prefix is added.
            Error::Parse(e) => write!(f, "{e}"),
            Error::Type(e) => write!(f, "type error: {e}"),
            Error::Eval(e) => write!(f, "evaluation error: {e}"),
            Error::Object { source, .. } => write!(f, "object error: {source}"),
            Error::Lint { message, .. } => write!(f, "lint error: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Type(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Object { source, .. } => Some(source),
            // A lint rejection is a policy decision, not a wrapped failure.
            Error::Lint { .. } => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<LexError> for Error {
    fn from(e: LexError) -> Error {
        Error::Parse(ParseError::Lex(e))
    }
}

impl From<TypeError> for Error {
    fn from(e: TypeError) -> Error {
        Error::Type(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Error {
        Error::Eval(e)
    }
}

impl From<ObjectError> for Error {
    fn from(source: ObjectError) -> Error {
        Error::Object { source, span: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn parse_errors_carry_the_lexer_position() {
        let err: Error = ncql_surface::parse("{@1} union $").unwrap_err().into();
        assert!(matches!(err, Error::Parse(_)));
        assert_eq!(err.position(), Some(11), "byte offset of the `$`");
        assert_eq!(err.span(), Some(Span::new(11, 12)));
        assert!(err.to_string().starts_with("lex error at byte 11"));
        assert!(err.source().is_some());
    }

    #[test]
    fn lex_and_parse_failures_report_the_same_unit() {
        // Satellite contract: `position()` means *byte offset* for both.
        let lex: Error = ncql_surface::parse("{@1} union $").unwrap_err().into();
        let parse: Error = ncql_surface::parse("@1 @2").unwrap_err().into();
        assert_eq!(lex.position(), Some(11));
        assert_eq!(
            parse.position(),
            Some(3),
            "byte offset of `@2`, not a token index"
        );
        assert!(parse.to_string().starts_with("parse error at byte 3"));
    }

    #[test]
    fn eval_errors_without_spans_are_positionless_but_sourced() {
        let err = Error::from(EvalError::work_limit_exceeded(7));
        assert_eq!(err.position(), None);
        assert!(err.to_string().contains("limit of 7"));
        assert!(err.source().is_some());
    }
}
