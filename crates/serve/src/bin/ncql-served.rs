//! `ncql-served`: serve NC queries over TCP.
//!
//! ```text
//! ncql-served [--addr HOST:PORT] [--max-inflight N] [--deadline-ms MS]
//! ```
//!
//! Every knob also has an environment override (`NCQL_SERVE_ADDR`,
//! `NCQL_SERVE_MAX_INFLIGHT`, `NCQL_SERVE_DEADLINE_MS`, ...; flags win).
//! The session itself is configured the same way as every other entry point
//! in the workspace: `NCQL_PARALLELISM`, `NCQL_PARALLEL_CUTOFF`,
//! `NCQL_LINT`, `NCQL_OPT`.
//!
//! The bound address is printed to stdout as `listening on ADDR` once the
//! listener is up (bind to port 0 to let the OS pick), so harnesses can
//! scrape it.

use ncql_engine::SessionBuilder;
use ncql_serve::{ServeConfig, Server};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = ServeConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--max-inflight" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_inflight = n,
                None => return usage("--max-inflight needs an integer"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => config.default_deadline_ms = ms,
                None => return usage("--deadline-ms needs an integer"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: ncql-served [--addr HOST:PORT] [--max-inflight N] [--deadline-ms MS]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let session = SessionBuilder::from_env().build();
    eprintln!(
        "ncql-served: backend {}, max inflight {}, default deadline {}ms",
        session.backend(),
        config.max_inflight,
        config.default_deadline_ms
    );
    let server = match Server::bind(config, session) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ncql-served: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("ncql-served: no local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("ncql-served: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("ncql-served: {problem}");
    eprintln!("usage: ncql-served [--addr HOST:PORT] [--max-inflight N] [--deadline-ms MS]");
    ExitCode::FAILURE
}
