//! Boolean circuit substrate and the query-to-circuit compiler.
//!
//! §4 of the paper defines ACᵏ via DLOGSPACE-DCL-uniform families of unbounded
//! fan-in AND/OR/NOT circuits of polynomial size and depth `O(logᵏ n)`; §7.2
//! proves `NRA(blog-loop^(k)) ⊆ ACᵏ` by compiling query expressions into such
//! circuits. This crate rebuilds that machinery:
//!
//! * [`gate`] — circuits of unbounded fan-in AND/OR/NOT gates: construction,
//!   evaluation, size and depth.
//! * [`gadgets`] — the string-encoding gadgets of Lemmas 7.4–7.6 for flat
//!   encodings: matched-parenthesis detection, outermost-comma/element-start
//!   detection, and encoding equality, all in constant depth and polynomial size.
//! * [`relquery`] — a small relational IR over the positional encoding of flat
//!   relations, with a reference (semantic) evaluator.
//! * [`compile`] — the compiler from the relational IR to circuit families: each
//!   relational operator is constant depth, and the logarithmic iterator unrolls
//!   into `⌈log n⌉` copies of its body, so `k` nested iterators give depth
//!   `O(logᵏ n)` — the constructive content of Proposition 7.7 / Theorem 6.2.
//! * [`dcl`] — the Direct Connection Language of a circuit (the set of tuples
//!   `(n, g, g′, t)` describing the wiring), per §4.
//! * [`logspace`] — a space-metered uniformity witness: a hand-written, regular
//!   transitive-closure circuit family whose DCL membership is decided by index
//!   arithmetic using `O(log n)` bits of working storage, checked against the
//!   materialized circuits.

pub mod compile;
pub mod dcl;
pub mod gadgets;
pub mod gate;
pub mod logspace;
pub mod relquery;

pub use gate::{Circuit, CircuitBuilder, GateId, GateKind};
pub use relquery::RelQuery;
