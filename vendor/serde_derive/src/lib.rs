//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! nothing in the tree calls a serializer — so these derives validate the
//! attribute position and expand to nothing. See `vendor/README.md`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
