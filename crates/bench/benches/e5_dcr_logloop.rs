//! E5 — Proposition 7.3: the halving simulation of dcr vs the direct evaluator.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::derived;
use ncql_core::eval::eval_closed;
use ncql_core::expr::Expr;
use ncql_object::{Type, Value};
use ncql_translate::prop73::HalvingSimulator;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_dcr_logloop");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let f = Expr::lam("y", Type::Base, Expr::bool_val(true));
    let u = Expr::lam2(
        "a",
        "b",
        Type::prod(Type::Bool, Type::Bool),
        derived::xor(Expr::var("a"), Expr::var("b")),
    );
    for n in [64u64, 512] {
        let x = Value::atom_set(0..n);
        let direct = Expr::dcr(
            Expr::bool_val(false),
            f.clone(),
            u.clone(),
            Expr::constant(x.clone()),
        );
        group.bench_with_input(BenchmarkId::new("direct_dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&direct).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("halving_simulation", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = HalvingSimulator::default();
                sim.dcr_by_halving(&Expr::bool_val(false), &f, &u, &x)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
