//! Static analyses over expressions: free variables and the *depth of recursion
//! nesting* of §3.
//!
//! The nesting depth stratifies the language into the ACᵏ hierarchy: Theorem 6.2
//! states `NRA¹(dcr^(k), ≤) = FLAT-ACᵏ` and Theorem 6.1 states
//! `NRA(bdcr^(k), ≤) = CMPX-OBJ-ACᵏ` for `k ≥ 1`. The definition from the paper is
//!
//! ```text
//! depth(dcr(e, f, u)) = max(depth(e), depth(f), 1 + depth(u))
//! ```
//!
//! — only the combiner `u` is actually iterated (the singleton map `f` is applied
//! once per element, in parallel). Similarly for `sri(e, i)` only the step `i`
//! counts, and for the iterators only the body counts.

use crate::expr::{Expr, ExprKind};
use crate::span::Span;
use std::collections::BTreeSet;

/// The set of free variables of an expression.
pub fn free_vars(expr: &Expr) -> BTreeSet<String> {
    fn walk(expr: &Expr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        if let ExprKind::Var(x) = &expr.kind {
            if !bound.iter().any(|b| b == x) {
                out.insert(x.clone());
            }
        }
        for child in expr.children() {
            match child.binds {
                Some(name) => {
                    bound.push(name.to_string());
                    walk(child.expr, bound, out);
                    bound.pop();
                }
                None => walk(child.expr, bound, out),
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(expr, &mut Vec::new(), &mut out);
    out
}

/// The source span of the first *free* occurrence of `name` in `expr`
/// (pre-order), when the expression was parsed from text. The engine uses
/// this to point binding-validation errors at the schema variable's use site.
pub fn free_var_span(expr: &Expr, name: &str) -> Option<Span> {
    fn walk(expr: &Expr, name: &str, bound: &mut Vec<String>) -> Option<Option<Span>> {
        // `Some(span)` = found (span may itself be None on span-less trees);
        // `None` = keep looking.
        if let ExprKind::Var(x) = &expr.kind {
            if x == name && !bound.iter().any(|b| b == x) {
                return Some(expr.span);
            }
        }
        for child in expr.children() {
            let found = match child.binds {
                Some(binder) if binder == name => continue, // shadowed below here
                Some(binder) => {
                    bound.push(binder.to_string());
                    let r = walk(child.expr, name, bound);
                    bound.pop();
                    r
                }
                None => walk(child.expr, name, bound),
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }
    walk(expr, name, &mut Vec::new()).flatten()
}

/// Is the expression closed (no free variables)?
pub fn is_closed(expr: &Expr) -> bool {
    free_vars(expr).is_empty()
}

/// The depth of recursion/iteration nesting (§3 and §7.1). An expression with no
/// recursor or iterator has depth 0; Theorem 6.2 places a flat query of depth `k ≥ 1`
/// in ACᵏ.
///
/// Which operand is "the iterated one" (the combiner of a `dcr`, the step of
/// an `sri`, the body of an iterator) is recorded once, on
/// [`Expr::children`]'s `iterated` flag, rather than re-enumerated here.
pub fn recursion_depth(expr: &Expr) -> usize {
    expr.children()
        .into_iter()
        .map(|child| recursion_depth(child.expr) + usize::from(child.iterated))
        .max()
        .unwrap_or(0)
}

/// Count occurrences of each class of recursion construct — used by reports and
/// by the decidable-sublanguage check of `ncql-translate`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecursorCensus {
    /// Number of `dcr`/`bdcr` nodes.
    pub dcr: usize,
    /// Number of `sru` nodes.
    pub sru: usize,
    /// Number of `sri`/`bsri` nodes.
    pub sri: usize,
    /// Number of `esr` nodes.
    pub esr: usize,
    /// Number of iterator nodes (`loop`, `log-loop` and bounded variants).
    pub iterators: usize,
    /// Number of `ext` nodes.
    pub ext: usize,
}

/// Count the recursion constructs appearing in the expression.
pub fn census(expr: &Expr) -> RecursorCensus {
    let mut c = RecursorCensus::default();
    expr.visit(&mut |e| match &e.kind {
        ExprKind::Dcr { .. } | ExprKind::BDcr { .. } => c.dcr += 1,
        ExprKind::Sru { .. } => c.sru += 1,
        ExprKind::Sri { .. } | ExprKind::BSri { .. } => c.sri += 1,
        ExprKind::Esr { .. } => c.esr += 1,
        ExprKind::LogLoop { .. }
        | ExprKind::Loop { .. }
        | ExprKind::BLogLoop { .. }
        | ExprKind::BLoop { .. } => c.iterators += 1,
        ExprKind::Ext(_, _) => c.ext += 1,
        _ => {}
    });
    c
}

/// The ACᵏ level predicted by Theorem 6.1/6.2 for this expression: `max(1, depth)`
/// (the theorems are stated for `k ≥ 1`; depth-0 queries are already in AC¹ by
/// Proposition 6.4).
pub fn ac_level(expr: &Expr) -> usize {
    recursion_depth(expr).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_object::Type;

    fn union_combiner(ty: Type) -> Expr {
        Expr::lam2(
            "a",
            "b",
            Type::prod(ty.clone(), ty),
            Expr::union(Expr::var("a"), Expr::var("b")),
        )
    }

    #[test]
    fn free_vars_respect_binders() {
        let e = Expr::lam(
            "x",
            Type::Base,
            Expr::union(Expr::var("r"), Expr::singleton(Expr::var("x"))),
        );
        let fv = free_vars(&e);
        assert!(fv.contains("r"));
        assert!(!fv.contains("x"));
        assert!(!is_closed(&e));
        assert!(is_closed(&Expr::atom(1)));
    }

    #[test]
    fn let_binder_shadows() {
        let e = Expr::let_in("x", Expr::var("y"), Expr::var("x"));
        let fv = free_vars(&e);
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["y".to_string()]);
    }

    #[test]
    fn depth_of_plain_nra_is_zero() {
        let e = Expr::union(Expr::singleton(Expr::atom(1)), Expr::empty(Type::Base));
        assert_eq!(recursion_depth(&e), 0);
        assert_eq!(ac_level(&e), 1);
    }

    #[test]
    fn depth_counts_only_the_iterated_argument() {
        let ty = Type::set(Type::Base);
        // A dcr whose f contains another dcr does NOT increase the depth beyond 1,
        // but a dcr whose u contains another dcr has depth 2.
        let inner = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
            union_combiner(ty.clone()),
            Expr::var("s"),
        );
        assert_eq!(recursion_depth(&inner), 1);

        let dcr_in_f = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("y", ty.clone(), inner.clone()),
            union_combiner(ty.clone()),
            Expr::var("ss"),
        );
        assert_eq!(recursion_depth(&dcr_in_f), 1);

        let dcr_in_u = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
            Expr::lam2(
                "a",
                "b",
                Type::prod(ty.clone(), ty.clone()),
                Expr::union(inner, Expr::var("b")),
            ),
            Expr::var("s"),
        );
        assert_eq!(recursion_depth(&dcr_in_u), 2);
        assert_eq!(ac_level(&dcr_in_u), 2);
    }

    #[test]
    fn iterator_depth_counts_body() {
        let ty = Type::set(Type::Base);
        let body = Expr::lam("r", ty.clone(), Expr::var("r"));
        let e = Expr::log_loop(body.clone(), Expr::var("x"), Expr::empty(Type::Base));
        assert_eq!(recursion_depth(&e), 1);
        // Nesting a log-loop inside the body of another gives depth 2 (Example 7.2:
        // log² n iterations need iteration-nesting depth two).
        let nested = Expr::log_loop(
            Expr::lam(
                "r",
                ty.clone(),
                Expr::log_loop(body, Expr::var("x"), Expr::var("r")),
            ),
            Expr::var("x"),
            Expr::empty(Type::Base),
        );
        assert_eq!(recursion_depth(&nested), 2);
    }

    #[test]
    fn free_var_span_finds_the_first_free_use_site() {
        use crate::span::Span;
        let text = "ext(\\x: atom. {x}, s) union s";
        let e = ncql_test_parse(text);
        // The first *free* occurrence of `s` is the ext argument at byte 19;
        // the bound `x` inside the lambda is skipped.
        assert_eq!(free_var_span(&e, "s"), Some(Span::new(19, 20)));
        assert_eq!(free_var_span(&e, "x"), None, "x is bound");
        assert_eq!(free_var_span(&e, "missing"), None);
        // Span-less (builder-built) trees yield None even when the variable
        // is free.
        let built = Expr::union(Expr::var("s"), Expr::var("s"));
        assert_eq!(free_var_span(&built, "s"), None);
    }

    /// A minimal stand-in for the surface parser (which lives upstream of
    /// this crate): spans are attached by hand to the two nodes under test.
    fn ncql_test_parse(_text: &str) -> Expr {
        use crate::span::Span;
        // ext(\x: atom. {x}, s) union s  — only the spans used above matter.
        let lam = Expr::lam(
            "x",
            ncql_object::Type::Base,
            Expr::singleton(Expr::var("x").at(Span::new(15, 16))),
        );
        let ext = Expr::ext(lam, Expr::var("s").at(Span::new(19, 20)));
        Expr::union(ext, Expr::var("s").at(Span::new(28, 29))).at(Span::new(0, 29))
    }

    #[test]
    fn census_counts_constructs() {
        let ty = Type::set(Type::Base);
        let e = Expr::ext(
            Expr::lam("x", Type::Base, Expr::singleton(Expr::var("x"))),
            Expr::dcr(
                Expr::empty(Type::Base),
                Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
                union_combiner(ty),
                Expr::var("s"),
            ),
        );
        let c = census(&e);
        assert_eq!(c.dcr, 1);
        assert_eq!(c.ext, 1);
        assert_eq!(c.sri, 0);
    }
}
