//! A tiny query runner for the surface syntax: pass a query as the first
//! argument (or pipe it on stdin) and it is parsed, type-checked, analysed for
//! recursion depth, and evaluated, with the cost model reported.
//!
//! Backend selection: `--parallel N` (or the `NCQL_PARALLELISM` environment
//! variable) evaluates on the parallel backend with `N` worker threads;
//! otherwise the sequential reference evaluator runs. Values and cost
//! statistics are identical either way — only wall-clock changes.
//!
//! Examples:
//!
//! ```text
//! cargo run --example query_repl -- "nat_add(20, 22)"
//! cargo run --example query_repl -- --parallel 4 \
//!   "dcr(empty[(atom * atom)], \y: atom. {(@1,@2)} union {(@2,@3)}, \
//!        \p: ({(atom*atom)} * {(atom*atom)}). pi1 p union pi2 p, {@1} union {@2})"
//! echo "{@1} union {@2} union {@1}" | NCQL_PARALLELISM=4 cargo run --example query_repl
//! ```

use ncql::core::eval::{CostStats, EvalConfig, Evaluator};
use ncql::core::parallel::ParallelEvaluator;
use ncql::core::{analysis, typecheck};
use ncql::object::Value;
use ncql::surface;
use std::io::Read;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut parallelism: Option<usize> = std::env::var("NCQL_PARALLELISM")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok());
    if let Some(pos) = args.iter().position(|a| a == "--parallel") {
        if pos + 1 >= args.len() {
            eprintln!("--parallel requires a thread count");
            std::process::exit(2);
        }
        match args[pos + 1].parse::<usize>() {
            Ok(n) => parallelism = Some(n),
            Err(_) => {
                eprintln!("--parallel requires a numeric thread count");
                std::process::exit(2);
            }
        }
        args.drain(pos..=pos + 1);
    }

    let text = match args.into_iter().next() {
        Some(arg) => arg,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("reading the query from stdin");
            buf
        }
    };
    let text = text.trim();
    if text.is_empty() {
        eprintln!("usage: query_repl [--parallel N] \"<query>\"   (or pipe a query on stdin)");
        std::process::exit(2);
    }

    let expr = match surface::parse(text) {
        Ok(e) => e,
        Err(err) => {
            eprintln!("parse error: {err}");
            std::process::exit(1);
        }
    };
    println!("parsed      : {}", surface::print_expr(&expr));

    match typecheck::typecheck_closed(&expr) {
        Ok(ty) => println!("type        : {ty}"),
        Err(err) => {
            eprintln!("type error  : {err}");
            std::process::exit(1);
        }
    }
    let depth = analysis::recursion_depth(&expr);
    println!("depth       : {depth} (AC^{} by Theorem 6.1/6.2)", analysis::ac_level(&expr));

    let outcome: Result<(Value, CostStats), _> = match parallelism {
        Some(threads) if threads > 1 => {
            println!("backend     : parallel ({threads} threads)");
            let mut evaluator = ParallelEvaluator::with_config(EvalConfig {
                parallelism: Some(threads),
                ..EvalConfig::default()
            });
            evaluator.eval_closed(&expr).map(|v| (v, evaluator.stats()))
        }
        _ => {
            println!("backend     : sequential");
            let mut evaluator = Evaluator::new(EvalConfig::default());
            evaluator.eval_closed(&expr).map(|v| (v, evaluator.stats()))
        }
    };
    match outcome {
        Ok((value, stats)) => {
            println!("result      : {value}");
            println!("work / span : {} / {}", stats.work, stats.span);
        }
        Err(err) => {
            eprintln!("evaluation error: {err}");
            std::process::exit(1);
        }
    }
}
