//! Smoke tests mirroring the core path of every `examples/*.rs` target, so
//! example rot is caught by `cargo test` instead of only by running the
//! examples by hand. Each test keeps the example's assertions but trims the
//! printing and the larger sweep sizes.

use ncql::circuit::compile::{compile, compile_stats, run_compiled};
use ncql::circuit::dcl::direct_connection_language;
use ncql::circuit::logspace::{LogSpaceMeter, UniformTcFamily};
use ncql::circuit::relquery::{eval_reference, BitRelation, RelQuery};
use ncql::core::derived;
use ncql::core::eval::{eval_with_stats, EvalConfig, Evaluator};
use ncql::core::expr::Expr;
use ncql::core::{analysis, typecheck, EvalError};
use ncql::object::{Type, Value};
use ncql::core::parallel::ParallelEvaluator;
use ncql::queries::{datagen, graph, parity, powerset, Relation};
use ncql::surface;

/// `examples/quickstart.rs`: transitive closure and parity via dcr, plus the
/// surface-syntax round trip.
#[test]
fn quickstart_core_path() {
    let edges = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 4), (4, 2), (7, 8)]);
    let r = Expr::Const(edges.to_value());

    let tc_query = graph::tc_dcr(r);
    typecheck::typecheck_closed(&tc_query).expect("the query typechecks");
    assert!(analysis::recursion_depth(&tc_query) >= 1);
    let (result, stats) = eval_with_stats(&tc_query).expect("evaluation succeeds");
    assert_eq!(result, edges.transitive_closure().to_value());
    assert!(stats.span <= stats.work);

    let numbers = Expr::Const(Value::atom_set(0..13));
    let (odd, _) = eval_with_stats(&parity::parity_dcr(numbers)).expect("parity evaluates");
    assert_eq!(odd, Value::Bool(true));

    let text = "dcr(false, \\y: atom. true, \
                \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
                {@1} union {@2} union {@3} union {@4} union {@5})";
    let parsed = surface::parse(text).expect("the surface query parses");
    let mut evaluator = Evaluator::new(EvalConfig::default());
    let value = evaluator.eval_closed(&parsed).expect("the parsed query evaluates");
    assert_eq!(value, Value::Bool(true));
    let reparsed = surface::parse(&surface::print_expr(&parsed))
        .expect("the pretty-printed query parses back");
    assert_eq!(
        evaluator.eval_closed(&reparsed).expect("round trip evaluates"),
        Value::Bool(true)
    );
}

/// `examples/graph_analytics.rs`: strategy agreement, reachability,
/// connectivity, and the parallel executor.
#[test]
fn graph_analytics_core_path() {
    for n in [8u64, 16] {
        let rel = datagen::random_graph(n, 2.0 / n as f64, 42);
        let r = Expr::Const(rel.to_value());
        let (tc_dcr, dcr_stats) = eval_with_stats(&graph::tc_dcr(r.clone())).expect("tc dcr");
        let (tc_elem, elem_stats) =
            eval_with_stats(&graph::tc_elementwise(r)).expect("tc elementwise");
        assert_eq!(tc_dcr, tc_elem, "both strategies compute the same closure");
        assert_eq!(tc_dcr, rel.transitive_closure().to_value());
        assert!(dcr_stats.span <= elem_stats.span || rel.is_empty());
    }

    let rel = datagen::cycle_graph(12);
    let r = Expr::Const(rel.to_value());
    let reach = eval_with_stats(&graph::reachable_from(r.clone(), Expr::atom(0)))
        .expect("reachability")
        .0;
    assert_eq!(reach.cardinality(), Some(12));
    let connected = eval_with_stats(&graph::strongly_connected(r)).expect("connectivity").0;
    assert_eq!(connected, Value::Bool(true));
    let path = Expr::Const(datagen::path_graph(12).to_value());
    let connected_path =
        eval_with_stats(&graph::strongly_connected(path)).expect("connectivity").0;
    assert_eq!(connected_path, Value::Bool(false));

    let n = 12u64;
    let query = graph::tc_dcr(Expr::Const(datagen::path_graph(n).to_value()));
    for threads in [1usize, 4] {
        let mut evaluator = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(threads),
            parallel_cutoff: 256,
            ..EvalConfig::default()
        });
        let out = evaluator.eval_closed(&query).expect("parallel tc");
        assert_eq!(out.cardinality(), Some(((n + 1) * n / 2) as usize));
    }
}

/// `examples/complex_objects.rs`: unnest/nest on a nested store, the powerset
/// blow-up guard, and bounded recursion.
#[test]
fn complex_objects_core_path() {
    let store = datagen::document_store(4, 6, 7);
    let store_ty = Type::set(Type::prod(Type::Base, Type::binary_relation()));
    assert!(store.has_type(&store_ty));
    assert_eq!(store.cardinality(), Some(4));

    let unnested = derived::unnest(
        Type::Base,
        Type::prod(Type::Base, Type::Base),
        Expr::Const(store),
    );
    typecheck::typecheck_closed(&unnested).expect("unnest typechecks");
    let (flat, _) = eval_with_stats(&unnested).expect("unnest evaluates");
    let renested = derived::nest(
        Type::Base,
        Type::prod(Type::Base, Type::Base),
        Expr::Const(flat),
    );
    let (grouped, _) = eval_with_stats(&renested).expect("nest evaluates");
    assert_eq!(grouped.cardinality(), Some(4));

    let input = Expr::Const(Value::atom_set(0..18));
    let mut limited = Evaluator::new(EvalConfig {
        max_set_size: 4096,
        ..EvalConfig::default()
    });
    match limited.eval_closed(&powerset::powerset_dcr(input.clone())) {
        Err(EvalError::SetTooLarge { limit, attempted }) => assert!(attempted > limit),
        other => panic!("expected the powerset blow-up to be caught, got {other:?}"),
    }
    let mut bounded_eval = Evaluator::new(EvalConfig {
        max_set_size: 4096,
        ..EvalConfig::default()
    });
    bounded_eval
        .eval_closed(&powerset::bounded_small_subsets(input))
        .expect("bounded recursion stays within the limit");

    let (small, _) = eval_with_stats(&powerset::powerset_dcr(Expr::Const(Value::atom_set(0..6))))
        .expect("small powerset");
    assert_eq!(small.cardinality(), Some(64));
}

/// `examples/query_repl.rs`: the parse → typecheck → analyse → evaluate
/// pipeline the runner drives, on its documented sample queries.
#[test]
fn query_repl_core_path() {
    let expr = surface::parse("nat_add(20, 22)").expect("arithmetic parses");
    typecheck::typecheck_closed(&expr).expect("arithmetic typechecks");
    let mut evaluator = Evaluator::new(EvalConfig::default());
    assert_eq!(evaluator.eval_closed(&expr).expect("evaluates"), Value::Nat(42));

    let expr = surface::parse("{@1} union {@2} union {@1}").expect("set query parses");
    assert_eq!(analysis::recursion_depth(&expr), 0);
    let value = evaluator.eval_closed(&expr).expect("set query evaluates");
    assert_eq!(value.cardinality(), Some(2));

    let tc = "dcr(empty[(atom * atom)], \\y: atom. {(@1,@2)} union {(@2,@3)}, \
              \\p: ({(atom*atom)} * {(atom*atom)}). pi1 p union pi2 p, {@1} union {@2})";
    let expr = surface::parse(tc).expect("dcr query parses");
    typecheck::typecheck_closed(&expr).expect("dcr query typechecks");
    let value = evaluator.eval_closed(&expr).expect("dcr query evaluates");
    assert_eq!(value.cardinality(), Some(2));

    // The `--parallel N` path of the runner: same query, parallel backend,
    // identical value and cost statistics.
    let mut parallel = ParallelEvaluator::with_config(EvalConfig {
        parallelism: Some(4),
        parallel_cutoff: 1,
        ..EvalConfig::default()
    });
    assert_eq!(
        parallel.eval_closed(&expr).expect("parallel REPL path evaluates"),
        value
    );
    assert_eq!(parallel.stats(), evaluator.stats());
}

/// `examples/circuit_compilation.rs`: ACᵏ compilation stats, compiled-vs-
/// reference agreement, and the log-space uniformity meter.
#[test]
fn circuit_compilation_core_path() {
    for k in [1usize, 2] {
        for n in [4usize, 8] {
            let stats = compile_stats(&RelQuery::nested_depth_k(k), n);
            assert!(stats.depth > 0 && stats.size > 0);
        }
    }

    let n = 10;
    let q = RelQuery::transitive_closure(RelQuery::Input(0));
    let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let r = BitRelation::from_pairs(n, &pairs);
    let compiled = run_compiled(&q, n, std::slice::from_ref(&r));
    let reference = eval_reference(&q, &[r], n);
    assert_eq!(compiled, reference);
    assert_eq!(compiled.pairs().len(), n * (n - 1) / 2);

    let union = compile(&RelQuery::union(RelQuery::Input(0), RelQuery::Input(1)), 16);
    assert!(union.depth() <= 4, "union is constant depth");

    for n in [3usize, 5, 8] {
        let circuit = UniformTcFamily::generate(n);
        let dcl = direct_connection_language(n, &circuit);
        assert!(!dcl.is_empty());
        // Same O(log gates) budget the crate's own uniformity test uses.
        let budget =
            16 * (usize::BITS - UniformTcFamily::total_gates(n).leading_zeros()) as u64;
        for tuple in dcl.iter().take(200) {
            let mut meter = LogSpaceMeter::new();
            assert!(UniformTcFamily::dcl_member(n, tuple, &mut meter));
            assert!(meter.bits_used() <= budget);
        }
    }
}
