//! Complex object values and the linear order lifted to all types.
//!
//! Values mirror the type grammar of §2: atoms of the ordered base type `D`,
//! booleans, the empty tuple, pairs, and finite sets. Sets are kept in a
//! *canonical* representation — sorted by the lifted linear order with duplicates
//! removed — so that value equality is structural equality and the encoding of §5
//! ("no duplicates are allowed in the encoding of a set") is immediate.
//!
//! The order on the base type is the natural order on `u64` atom identifiers; it
//! is lifted to all types in the standard lexicographic way (booleans: `false <
//! true`; pairs: lexicographic; sets: by the sorted element sequences, shorter
//! prefix first), following the remark in §3 that "the order relation can be
//! lifted to all types".
//!
//! Set storage is `Arc`-backed: cloning a [`VSet`] (and hence a set-shaped
//! [`Value`]) is O(1) and the clone shares the element buffer with the
//! original. This is what makes values cheap to hand to the parallel
//! evaluation backend — worker threads receive shared references to the same
//! canonical buffer instead of deep copies — and it is safe because canonical
//! sets are immutable in practice ([`VSet::insert`] copies-on-write when the
//! buffer is shared).

use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An atom of the ordered base type `D`. Atoms are abstract; only their identity
/// and relative order are observable by generic queries (see [`crate::morphism`]).
pub type Atom = u64;

/// A complex object value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An element of the ordered base type `D`.
    Atom(Atom),
    /// A boolean.
    Bool(bool),
    /// The empty tuple `()`, the only value of type `unit`.
    Unit,
    /// An external natural number (only used with the Σ extension of Prop 6.3).
    Nat(u64),
    /// A pair `(x, y)`.
    Pair(Box<Value>, Box<Value>),
    /// A finite set, kept sorted and duplicate-free.
    Set(VSet),
}

/// A finite set of values in canonical form: elements are sorted by the lifted
/// linear order and contain no duplicates. The element buffer is shared
/// (`Arc`), so clones are O(1) and safe to send across threads.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct VSet {
    elems: Arc<Vec<Value>>,
}

impl VSet {
    /// The empty set.
    pub fn empty() -> VSet {
        VSet {
            elems: Arc::new(Vec::new()),
        }
    }

    /// A singleton set `{x}`.
    pub fn singleton(x: Value) -> VSet {
        VSet {
            elems: Arc::new(vec![x]),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test (binary search over the canonical representation).
    pub fn contains(&self, x: &Value) -> bool {
        self.elems.binary_search(x).is_ok()
    }

    /// Insert one element (the `insert presentation` constructor `x ⊲ s` of §2),
    /// preserving canonical form. Returns `true` if the element was new.
    /// Copies the shared buffer on write if other clones are alive.
    pub fn insert(&mut self, x: Value) -> bool {
        match self.elems.binary_search(&x) {
            Ok(_) => false,
            Err(pos) => {
                Arc::make_mut(&mut self.elems).insert(pos, x);
                true
            }
        }
    }

    /// Set union (the `union presentation` constructor of §2).
    pub fn union(&self, other: &VSet) -> VSet {
        let mut out = Vec::with_capacity(self.elems.len() + other.elems.len());
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                Ordering::Less => {
                    out.push(self.elems[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(other.elems[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    out.push(self.elems[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.elems[i..]);
        out.extend_from_slice(&other.elems[j..]);
        VSet {
            elems: Arc::new(out),
        }
    }

    /// Set intersection (used by the bounding step of `bdcr`/`bsri`).
    pub fn intersect(&self, other: &VSet) -> VSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    out.push(self.elems[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        VSet {
            elems: Arc::new(out),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &VSet) -> VSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() {
            if j >= other.elems.len() {
                out.extend_from_slice(&self.elems[i..]);
                break;
            }
            match self.elems[i].cmp(&other.elems[j]) {
                Ordering::Less => {
                    out.push(self.elems[i].clone());
                    i += 1;
                }
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        VSet {
            elems: Arc::new(out),
        }
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset_of(&self, other: &VSet) -> bool {
        self.elems.iter().all(|x| other.contains(x))
    }

    /// Iterate over the elements in the canonical (ascending) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.elems.iter()
    }

    /// The elements as a slice, in canonical order.
    pub fn as_slice(&self) -> &[Value] {
        &self.elems
    }

    /// Consume the set and return the elements in canonical order. O(1) when
    /// this is the last clone of the buffer; copies otherwise.
    pub fn into_vec(self) -> Vec<Value> {
        Arc::try_unwrap(self.elems).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl IntoIterator for VSet {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a VSet {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl FromIterator<Value> for VSet {
    /// Build a set from an arbitrary iterator of elements: sorts and deduplicates.
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> VSet {
        let mut elems: Vec<Value> = iter.into_iter().collect();
        elems.sort();
        elems.dedup();
        VSet {
            elems: Arc::new(elems),
        }
    }
}

/// Rank used to order values of *different* shapes. Generic queries only ever
/// compare values of the same type, but a total order on all values keeps the
/// canonical set representation simple and matches the paper's "lift the order to
/// all types" remark.
fn shape_rank(v: &Value) -> u8 {
    match v {
        Value::Unit => 0,
        Value::Bool(_) => 1,
        Value::Atom(_) => 2,
        Value::Nat(_) => 3,
        Value::Pair(_, _) => 4,
        Value::Set(_) => 5,
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Unit, Value::Unit) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Atom(a), Value::Atom(b)) => a.cmp(b),
            (Value::Nat(a), Value::Nat(b)) => a.cmp(b),
            (Value::Pair(a1, a2), Value::Pair(b1, b2)) => a1.cmp(b1).then_with(|| a2.cmp(b2)),
            (Value::Set(a), Value::Set(b)) => {
                // Lexicographic on the sorted element sequences; Vec's Ord is
                // exactly that (shorter prefix compares Less).
                a.elems.cmp(&b.elems)
            }
            _ => shape_rank(self).cmp(&shape_rank(other)),
        }
    }
}

impl Value {
    /// The empty set of any element type.
    pub fn empty_set() -> Value {
        Value::Set(VSet::empty())
    }

    /// A singleton set `{x}`.
    pub fn singleton(x: Value) -> Value {
        Value::Set(VSet::singleton(x))
    }

    /// Build a set value from an iterator of elements.
    pub fn set_from<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::Set(VSet::from_iter(iter))
    }

    /// A pair `(x, y)`.
    pub fn pair(x: Value, y: Value) -> Value {
        Value::Pair(Box::new(x), Box::new(y))
    }

    /// Build a binary relation value `{(a, b), ...}` from atom pairs.
    pub fn relation_from_pairs<I: IntoIterator<Item = (Atom, Atom)>>(pairs: I) -> Value {
        Value::set_from(
            pairs
                .into_iter()
                .map(|(a, b)| Value::pair(Value::Atom(a), Value::Atom(b))),
        )
    }

    /// Build a unary relation value `{a, ...}` from atoms.
    pub fn atom_set<I: IntoIterator<Item = Atom>>(atoms: I) -> Value {
        Value::set_from(atoms.into_iter().map(Value::Atom))
    }

    /// If this is a set, borrow it.
    pub fn as_set(&self) -> Option<&VSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// If this is a set, take it.
    pub fn into_set(self) -> Option<VSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// If this is a pair, borrow the components.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// If this is a boolean, return it.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// If this is an atom, return it.
    pub fn as_atom(&self) -> Option<Atom> {
        match self {
            Value::Atom(a) => Some(*a),
            _ => None,
        }
    }

    /// If this is an external natural number, return it.
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Value::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// Does this value inhabit the given complex object type?
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Atom(_), Type::Base) => true,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Unit, Type::Unit) => true,
            (Value::Nat(_), Type::Nat) => true,
            (Value::Pair(a, b), Type::Prod(ta, tb)) => a.has_type(ta) && b.has_type(tb),
            (Value::Set(s), Type::Set(t)) => s.iter().all(|x| x.has_type(t)),
            _ => false,
        }
    }

    /// All atoms occurring in the value, in order of first occurrence of the
    /// canonical traversal. Used for the minimal encoding of §5 (atoms are
    /// renumbered `0 .. m−1`) and for genericity tests.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Value::Atom(a) => out.push(*a),
            Value::Bool(_) | Value::Unit | Value::Nat(_) => {}
            Value::Pair(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Value::Set(s) => {
                for x in s.iter() {
                    x.collect_atoms(out);
                }
            }
        }
    }

    /// Total number of value constructors (a size measure used in cost reporting
    /// and in the polynomial-size assertions of the encoding tests).
    pub fn size(&self) -> usize {
        match self {
            Value::Atom(_) | Value::Bool(_) | Value::Unit | Value::Nat(_) => 1,
            Value::Pair(a, b) => 1 + a.size() + b.size(),
            Value::Set(s) => 1 + s.iter().map(Value::size).sum::<usize>(),
        }
    }

    /// Maximum set-nesting depth of the value.
    pub fn set_height(&self) -> usize {
        match self {
            Value::Atom(_) | Value::Bool(_) | Value::Unit | Value::Nat(_) => 0,
            Value::Pair(a, b) => a.set_height().max(b.set_height()),
            Value::Set(s) => 1 + s.iter().map(Value::set_height).max().unwrap_or(0),
        }
    }

    /// Cardinality if this is a set; `None` otherwise.
    pub fn cardinality(&self) -> Option<usize> {
        self.as_set().map(VSet::len)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "a{a}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Unit => write!(f, "()"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> VSet {
        VSet::from_iter(vec![
            Value::Atom(2),
            Value::Atom(1),
            Value::Atom(3),
            Value::Atom(2),
        ])
    }

    #[test]
    fn sets_are_canonical() {
        let s = abc();
        assert_eq!(s.len(), 3);
        let elems: Vec<_> = s.iter().cloned().collect();
        assert_eq!(elems, vec![Value::Atom(1), Value::Atom(2), Value::Atom(3)]);
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let mut s = VSet::empty();
        assert!(s.insert(Value::Atom(7)));
        assert!(!s.insert(Value::Atom(7)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_is_associative_commutative_idempotent() {
        let a = VSet::from_iter(vec![Value::Atom(1), Value::Atom(2)]);
        let b = VSet::from_iter(vec![Value::Atom(2), Value::Atom(3)]);
        let c = VSet::from_iter(vec![Value::Atom(4)]);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(a.union(&a), a);
        assert_eq!(a.union(&VSet::empty()), a);
    }

    #[test]
    fn intersection_and_difference() {
        let a = VSet::from_iter(vec![Value::Atom(1), Value::Atom(2), Value::Atom(3)]);
        let b = VSet::from_iter(vec![Value::Atom(2), Value::Atom(3), Value::Atom(4)]);
        assert_eq!(
            a.intersect(&b),
            VSet::from_iter(vec![Value::Atom(2), Value::Atom(3)])
        );
        assert_eq!(a.difference(&b), VSet::from_iter(vec![Value::Atom(1)]));
        assert!(a.intersect(&b).is_subset_of(&a));
    }

    #[test]
    fn equality_is_structural_on_canonical_sets() {
        let s1 = Value::set_from(vec![Value::Atom(1), Value::Atom(2)]);
        let s2 = Value::set_from(vec![Value::Atom(2), Value::Atom(1), Value::Atom(1)]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn order_is_lifted_to_pairs_and_sets() {
        let p1 = Value::pair(Value::Atom(1), Value::Atom(9));
        let p2 = Value::pair(Value::Atom(2), Value::Atom(0));
        assert!(p1 < p2);
        let s1 = Value::set_from(vec![Value::Atom(1)]);
        let s2 = Value::set_from(vec![Value::Atom(1), Value::Atom(2)]);
        assert!(s1 < s2);
        let s3 = Value::set_from(vec![Value::Atom(2)]);
        assert!(s2 < s3);
    }

    #[test]
    fn has_type_checks_structure() {
        let rel = Value::relation_from_pairs(vec![(1, 2), (2, 3)]);
        assert!(rel.has_type(&Type::binary_relation()));
        assert!(!rel.has_type(&Type::unary_relation()));
        assert!(Value::Bool(true).has_type(&Type::Bool));
        assert!(!Value::Bool(true).has_type(&Type::Base));
        let nested = Value::set_from(vec![Value::atom_set(vec![1, 2]), Value::atom_set(vec![3])]);
        assert!(nested.has_type(&Type::set(Type::set(Type::Base))));
    }

    #[test]
    fn atoms_are_collected_sorted_and_deduplicated() {
        let v = Value::pair(
            Value::relation_from_pairs(vec![(5, 1), (1, 3)]),
            Value::Atom(3),
        );
        assert_eq!(v.atoms(), vec![1, 3, 5]);
    }

    #[test]
    fn size_and_set_height() {
        let v = Value::set_from(vec![Value::atom_set(vec![1]), Value::atom_set(vec![2, 3])]);
        assert_eq!(v.set_height(), 2);
        assert_eq!(v.size(), 1 + (1 + 1) + (1 + 2));
    }

    #[test]
    fn clones_share_the_buffer_and_insert_copies_on_write() {
        let a = VSet::from_iter((0..100).map(Value::Atom));
        let mut b = a.clone();
        // The clone shares storage with the original...
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
        // ...until a write, which must not disturb the original.
        assert!(b.insert(Value::Atom(1000)));
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 101);
        assert!(!a.contains(&Value::Atom(1000)));
        assert!(b.contains(&Value::Atom(1000)));
    }

    #[test]
    fn values_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Value>();
        assert_send_sync::<VSet>();
    }

    #[test]
    fn display_of_values() {
        let v = Value::pair(Value::Atom(1), Value::set_from(vec![Value::Bool(true)]));
        assert_eq!(v.to_string(), "(a1, {true})");
    }
}
