//! The parity query of §1: "For parity, we take `e = false`, `f(y) = true` and
//! `u(v1, v2) = v1 xor v2`."
//!
//! Parity of the cardinality of a set is the standard example separating `dcr`
//! from plain `sru`: xor is associative and commutative with identity `false`,
//! but it is *not* idempotent, so parity is expressible with `dcr` while it is
//! open whether `sru` can express it (§2). It is also not expressible in
//! first-order logic at all, which is why it shows up throughout the circuit
//! literature the paper builds on.

use ncql_core::derived;
use ncql_core::expr::Expr;
use ncql_object::Type;

/// The xor combiner `λ(v1, v2). v1 xor v2` at type `B × B → B`, written with the
/// explicit conditional so that it falls inside the decidable "orderly"
/// sublanguage recognized by `ncql-translate` (§7.1).
pub fn xor_combiner() -> Expr {
    Expr::lam2(
        "v1",
        "v2",
        Type::prod(Type::Bool, Type::Bool),
        Expr::ite(
            Expr::var("v1"),
            Expr::ite(Expr::var("v2"), Expr::bool_val(false), Expr::bool_val(true)),
            Expr::var("v2"),
        ),
    )
}

/// Parity of a set of atoms via `dcr(false, λy. true, xor)` — logarithmic span.
pub fn parity_dcr(set: Expr) -> Expr {
    Expr::dcr(
        Expr::bool_val(false),
        Expr::lam("y", Type::Base, Expr::bool_val(true)),
        xor_combiner(),
        set,
    )
}

/// Parity via the element-by-element recursion `esr(false, λ(y, acc). ¬acc)` —
/// linear span. (The step is i-commutative but not i-idempotent, so this is an
/// `esr`, not an `sri`; over our canonical sets the two coincide.)
pub fn parity_esr(set: Expr) -> Expr {
    Expr::esr(
        Expr::bool_val(false),
        Expr::lam2(
            "y",
            "acc",
            Type::prod(Type::Base, Type::Bool),
            derived::not(Expr::var("acc")),
        ),
        set,
    )
}

/// Parity via `loop`: iterate `¬·` a number of times equal to the cardinality,
/// starting from `false` — the §7.1 remark that `loop` can express parity (while
/// order-free FO(n^O(1)) cannot).
pub fn parity_loop(set: Expr) -> Expr {
    Expr::loop_(
        Expr::lam("acc", Type::Bool, derived::not(Expr::var("acc"))),
        set,
        Expr::bool_val(false),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::analysis;
    use ncql_core::eval::{eval_closed, eval_with_stats};
    use ncql_core::typecheck::typecheck_closed;
    use ncql_object::Value;

    fn input(n: u64) -> Expr {
        Expr::constant(Value::atom_set((0..n).map(|i| i * 3 + 1)))
    }

    #[test]
    fn all_three_variants_agree() {
        for n in [0u64, 1, 2, 3, 7, 8, 15, 16, 33] {
            let expected = Value::Bool(n % 2 == 1);
            assert_eq!(
                eval_closed(&parity_dcr(input(n))).unwrap(),
                expected,
                "dcr n={n}"
            );
            assert_eq!(
                eval_closed(&parity_esr(input(n))).unwrap(),
                expected,
                "esr n={n}"
            );
            assert_eq!(
                eval_closed(&parity_loop(input(n))).unwrap(),
                expected,
                "loop n={n}"
            );
        }
    }

    #[test]
    fn variants_typecheck_to_bool() {
        assert_eq!(typecheck_closed(&parity_dcr(input(4))).unwrap(), Type::Bool);
        assert_eq!(typecheck_closed(&parity_esr(input(4))).unwrap(), Type::Bool);
        assert_eq!(
            typecheck_closed(&parity_loop(input(4))).unwrap(),
            Type::Bool
        );
    }

    #[test]
    fn recursion_depth_is_one() {
        assert_eq!(analysis::recursion_depth(&parity_dcr(input(4))), 1);
        assert_eq!(analysis::recursion_depth(&parity_loop(input(4))), 1);
    }

    #[test]
    fn dcr_parity_has_logarithmic_span_and_esr_linear() {
        let (_, dcr_small) = eval_with_stats(&parity_dcr(input(32))).unwrap();
        let (_, dcr_large) = eval_with_stats(&parity_dcr(input(512))).unwrap();
        let (_, esr_small) = eval_with_stats(&parity_esr(input(32))).unwrap();
        let (_, esr_large) = eval_with_stats(&parity_esr(input(512))).unwrap();
        // dcr span grows additively (log factor), esr span multiplicatively.
        assert!(dcr_large.span < dcr_small.span * 3);
        assert!(esr_large.span > esr_small.span * 8);
    }
}
