//! Sessions: configuration, the prepared-statement cache, and execution.

use crate::cache::ShardedLru;
use crate::error::Error;
use crate::prepared::{Backend, Outcome, PreparedPlan, PreparedQuery};
use ncql_core::eval::{CancelToken, CostStats, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::externs::ExternRegistry;
use ncql_core::parallel::{normalize_parallelism, ParallelEvaluator};
use ncql_core::rewrite::{optimize_analyzed, OptLevel};
use ncql_core::typecheck::{infer, value_type, TypeEnv};
use ncql_core::{analysis, analyze_query, EvalError, Finding, Lint};
use ncql_object::{ObjectError, Type, Value};
use ncql_pram::WorkStealingPool;
use std::sync::{Arc, OnceLock};

/// Default number of prepared plans a session retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// What a session does with deny-level lint findings at prepare time.
///
/// The prepare-time analysis always runs and its findings are always
/// available through [`PreparedQuery::analysis`]; the policy only decides
/// whether deny-level findings *reject* the query before any evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LintPolicy {
    /// Report findings on the prepared plan but never reject (the default).
    #[default]
    Warn,
    /// Reject a query whose analysis produced a deny-level finding:
    /// `prepare` fails with [`Error::Lint`] carrying the finding's span, and
    /// the query never reaches the evaluator.
    Deny,
}

/// Cache key of a prepared plan: the exact query text, the schema it was
/// checked under, the registry fingerprint the front end depended on, and the
/// optimizer configuration the plan was rewritten under. The optimizer level
/// is part of the key because two sessions differing only in [`OptLevel`]
/// produce *different* plans for the same text — sharing one cache entry
/// would serve a rewritten plan to a session that asked for the raw AST (or
/// vice versa).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    text: String,
    schema: Vec<(String, String)>,
    registry_fingerprint: u64,
    opt_level: OptLevel,
}

impl PlanKey {
    fn new(
        text: &str,
        schema: &[(String, Type)],
        registry_fingerprint: u64,
        opt_level: OptLevel,
    ) -> PlanKey {
        PlanKey {
            text: text.to_string(),
            schema: schema
                .iter()
                .map(|(name, ty)| (name.clone(), ty.to_string()))
                .collect(),
            registry_fingerprint,
            opt_level,
        }
    }
}

/// Per-execution overrides for [`Session::execute_with_options`]: a
/// cooperative cancellation token and *tightened* resource limits for one
/// request, without touching the session's own configuration.
///
/// This is the isolation surface a serving front end needs: the session is
/// shared by every in-flight request (one plan cache, one work-stealing
/// pool), while each request runs under its own budget — a deadline watchdog
/// holding the [`CancelToken`], a per-request work cap, a per-request set
/// cap. The limits only ever *lower* the session's: a request asking for more
/// than the session allows still runs under the session limit, so a shared
/// deployment cannot be talked out of its guardrails.
///
/// ```
/// use ncql_engine::{CancelToken, ExecOptions, Session};
///
/// let session = Session::new();
/// let query = session.prepare("nat_add(20, 22)")?;
/// let token = CancelToken::new();
/// let opts = ExecOptions::new().cancel(token.clone()).max_work(10_000);
/// let outcome = session.execute_with_options(&query, &[], &opts)?;
/// assert_eq!(outcome.value.to_string(), "42");
/// # Ok::<(), ncql_engine::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Cooperative cancellation flag for this execution, polled at every work
    /// charge (see [`CancelToken`]). Cancelling aborts the evaluation with
    /// [`EvalError::Cancelled`](ncql_core::EvalError::Cancelled).
    pub cancel: Option<CancelToken>,
    /// Work budget for this execution; the effective limit is the *minimum*
    /// of this and the session's `max_work`.
    pub max_work: Option<u64>,
    /// Intermediate-set cardinality cap for this execution; the effective
    /// limit is the *minimum* of this and the session's `max_set_size`.
    pub max_set_size: Option<usize>,
}

impl ExecOptions {
    /// No overrides: equivalent to [`Session::execute_with_bindings`].
    pub fn new() -> ExecOptions {
        ExecOptions::default()
    }

    /// Attach a cancellation token for this execution.
    pub fn cancel(mut self, token: CancelToken) -> ExecOptions {
        self.cancel = Some(token);
        self
    }

    /// Tighten the work budget for this execution.
    pub fn max_work(mut self, limit: u64) -> ExecOptions {
        self.max_work = Some(limit);
        self
    }

    /// Tighten the intermediate-set cardinality cap for this execution.
    pub fn max_set_size(mut self, limit: usize) -> ExecOptions {
        self.max_set_size = Some(limit);
        self
    }
}

/// Counters describing the prepared-statement cache's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// `prepare` calls answered from the cache (front end skipped).
    pub hits: u64,
    /// `prepare` calls that ran the full front end.
    pub misses: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Maximum number of cached plans.
    pub capacity: usize,
}

/// Builds a [`Session`]: owns the external-function registry Σ, the resource
/// limits, the `parallelism`/`parallel_cutoff` knobs (i.e. the backend
/// choice), and the prepared-statement cache capacity.
///
/// ```
/// use ncql_engine::SessionBuilder;
///
/// let session = SessionBuilder::new()
///     .parallelism(Some(4))
///     .max_set_size(1 << 20)
///     .build();
/// assert_eq!(session.backend().to_string(), "parallel (4 threads)");
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: EvalConfig,
    cache_capacity: usize,
    lint_policy: LintPolicy,
    opt_level: OptLevel,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        SessionBuilder::new()
    }
}

impl SessionBuilder {
    /// A builder with the default configuration: sequential backend, the
    /// standard registry Σ, the default resource limits and a
    /// [`DEFAULT_CACHE_CAPACITY`]-entry plan cache.
    pub fn new() -> SessionBuilder {
        SessionBuilder {
            config: EvalConfig::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            lint_policy: LintPolicy::default(),
            opt_level: OptLevel::default(),
        }
    }

    /// A builder configured from the environment, so deployments can select
    /// the backend without code changes: `NCQL_PARALLELISM` sets the worker
    /// thread count (`0`/`1` mean sequential), `NCQL_PARALLEL_CUTOFF` the
    /// fork threshold, and `NCQL_POOL_THREADS` the worker-thread count of the
    /// session's persistent work-stealing pool when it should differ from
    /// `NCQL_PARALLELISM` (e.g. an oversubscribed pool on a small machine —
    /// the CI matrix runs one such leg). `NCQL_LINT=deny` (or `warn`) sets
    /// the [`LintPolicy`], and `NCQL_OPT=0` (or `none`/`off`) disables the
    /// algebraic optimizer (`1`/`default`/`on` restore it). `NCQL_KERNELS=0`
    /// (or `false`/`off`) disables compiled row kernels for `ext` over
    /// columnar sets — the kill switch the CI matrix exercises — and
    /// `1`/`true`/`on` re-enables them. Unset, empty or unparseable
    /// variables leave the defaults untouched.
    pub fn from_env() -> SessionBuilder {
        let mut builder = SessionBuilder::new();
        if let Ok(raw) = std::env::var("NCQL_PARALLELISM") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                builder.config.parallelism = normalize_parallelism(Some(n));
            }
        }
        if let Ok(raw) = std::env::var("NCQL_PARALLEL_CUTOFF") {
            if let Ok(cutoff) = raw.trim().parse::<u64>() {
                builder.config.parallel_cutoff = cutoff;
            }
        }
        if let Ok(raw) = std::env::var("NCQL_POOL_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                builder.config.pool_threads = normalize_parallelism(Some(n));
            }
        }
        if let Ok(raw) = std::env::var("NCQL_LINT") {
            match raw.trim() {
                "deny" => builder.lint_policy = LintPolicy::Deny,
                "warn" => builder.lint_policy = LintPolicy::Warn,
                _ => {}
            }
        }
        if let Ok(raw) = std::env::var("NCQL_OPT") {
            match raw.trim() {
                "0" | "none" | "off" => builder.opt_level = OptLevel::None,
                "1" | "default" | "on" => builder.opt_level = OptLevel::Default,
                _ => {}
            }
        }
        if let Ok(raw) = std::env::var("NCQL_KERNELS") {
            match raw.trim() {
                "0" | "false" | "off" => builder.config.kernels = false,
                "1" | "true" | "on" => builder.config.kernels = true,
                _ => {}
            }
        }
        builder
    }

    /// Replace the whole evaluation configuration at once (the individual
    /// setters below tweak single fields). The parallelism and pool-size
    /// knobs are normalized: `Some(0 | 1)` is stored as `None`.
    pub fn config(mut self, config: EvalConfig) -> SessionBuilder {
        self.config = EvalConfig {
            parallelism: normalize_parallelism(config.parallelism),
            pool_threads: normalize_parallelism(config.pool_threads),
            ..config
        };
        self
    }

    /// Select the backend: `None`, `Some(0)` and `Some(1)` (all normalized to
    /// `None`) run the sequential reference evaluator; `Some(n)` with `n ≥ 2`
    /// runs the parallel backend with `n` worker threads.
    pub fn parallelism(mut self, parallelism: Option<usize>) -> SessionBuilder {
        self.config.parallelism = normalize_parallelism(parallelism);
        self
    }

    /// Cost-model fork threshold of the parallel backend: a region is forked
    /// only when `applications × closure body size` reaches this value.
    pub fn parallel_cutoff(mut self, cutoff: u64) -> SessionBuilder {
        self.config.parallel_cutoff = cutoff;
        self
    }

    /// Worker-thread count of the session's persistent work-stealing pool,
    /// when it should differ from [`SessionBuilder::parallelism`] (for
    /// example an oversubscribed pool wider than the per-region fan-out).
    /// Normalized exactly like `parallelism` — `Some(0 | 1)` is stored as
    /// `None`, meaning "size the pool by the parallelism knob" — so a
    /// sequential session never spawns a pool regardless of this value.
    pub fn pool_threads(mut self, threads: Option<usize>) -> SessionBuilder {
        self.config.pool_threads = normalize_parallelism(threads);
        self
    }

    /// Maximum allowed cardinality of any intermediate set.
    pub fn max_set_size(mut self, limit: usize) -> SessionBuilder {
        self.config.max_set_size = limit;
        self
    }

    /// Maximum total work before evaluation aborts.
    pub fn max_work(mut self, limit: u64) -> SessionBuilder {
        self.config.max_work = limit;
        self
    }

    /// Spot-check `dcr`/`sru` combiners for the algebraic laws during
    /// evaluation.
    pub fn check_algebraic_laws(mut self, check: bool) -> SessionBuilder {
        self.config.check_algebraic_laws = check;
        self
    }

    /// The external-function registry Σ queries are checked and evaluated
    /// against.
    pub fn registry(mut self, registry: ExternRegistry) -> SessionBuilder {
        self.config.registry = registry;
        self
    }

    /// Enable or disable compiled row kernels for `ext` over columnar sets
    /// (on by default; the `NCQL_KERNELS=0` environment kill switch read by
    /// [`SessionBuilder::from_env`] sets the same knob). Purely an execution
    /// strategy: values and cost statistics are bit-identical either way.
    pub fn row_kernels(mut self, enabled: bool) -> SessionBuilder {
        self.config.kernels = enabled;
        self
    }

    /// Capacity of the prepared-statement cache. `0` disables caching (every
    /// `prepare` runs the full front end — the "cold" mode the benches use).
    pub fn cache_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// What to do with deny-level lint findings at prepare time: report them
    /// on the plan ([`LintPolicy::Warn`], the default) or reject the query
    /// before evaluation ([`LintPolicy::Deny`]).
    pub fn lint_policy(mut self, policy: LintPolicy) -> SessionBuilder {
        self.lint_policy = policy;
        self
    }

    /// How hard `prepare` tries to optimize a plan: [`OptLevel::Default`]
    /// runs the cost-gated algebraic rewriter of `ncql_core::rewrite` between
    /// typecheck and the cache insert; [`OptLevel::None`] keeps the raw typed
    /// AST (useful for debugging, differential testing, and pinning plans
    /// whose diagnostics must match the source text node for node).
    pub fn opt_level(mut self, level: OptLevel) -> SessionBuilder {
        self.opt_level = level;
        self
    }

    /// Build the session.
    pub fn build(self) -> Session {
        Session {
            config: self.config,
            lint_policy: self.lint_policy,
            opt_level: self.opt_level,
            registry_fingerprint: OnceLock::new(),
            pool: OnceLock::new(),
            cache: ShardedLru::new(self.cache_capacity),
        }
    }
}

/// The single supported entry point for running NC queries.
///
/// A session owns one [`EvalConfig`] (registry Σ, resource limits, backend
/// choice) and a prepared-statement cache. [`Session::prepare`] runs the front
/// end — parse → typecheck → recursion-depth analysis — exactly once per
/// distinct (query text, schema, registry fingerprint) and caches the plan, so
/// [`Session::execute`] and friends only pay the Suciu–Tannen evaluation cost.
///
/// Sessions are `Sync`: one session can serve `prepare`/`execute` calls from
/// many threads (the cache is internally locked; executions are independent).
///
/// ```
/// use ncql_engine::Session;
///
/// let session = Session::new();
/// let query = session.prepare("nat_add(20, 22)")?;
/// assert_eq!(query.ty().to_string(), "nat");
/// let outcome = session.execute(&query)?;
/// assert_eq!(outcome.value.to_string(), "42");
/// # Ok::<(), ncql_engine::Error>(())
/// ```
#[derive(Debug)]
pub struct Session {
    config: EvalConfig,
    lint_policy: LintPolicy,
    opt_level: OptLevel,
    /// Computed lazily on the first `prepare`: pure-evaluation sessions (the
    /// corpus shim, the benches' trusted-AST path) never pay the hash.
    registry_fingerprint: OnceLock<u64>,
    /// The session's persistent work-stealing pool, shared by every parallel
    /// execution it dispatches (one worker set per session, not per query).
    /// Created lazily on the first parallel execution — and the pool itself
    /// spawns its workers lazily on the first forked region — so a
    /// sequential session never creates a worker thread at all.
    pool: OnceLock<Arc<WorkStealingPool>>,
    /// The prepared-plan cache: per-shard LRU maps behind per-shard locks
    /// (hash-of-key sharding), so concurrent `prepare` traffic for distinct
    /// texts does not serialize on one mutex.
    cache: ShardedLru<PlanKey, Arc<PreparedPlan>>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A session with the default configuration (sequential backend, standard
    /// registry Σ).
    pub fn new() -> Session {
        SessionBuilder::new().build()
    }

    /// Start building a customized session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The evaluation configuration this session runs every query under.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The session's lint policy: what deny-level findings do at prepare.
    pub fn lint_policy(&self) -> LintPolicy {
        self.lint_policy
    }

    /// The session's optimizer level: whether `prepare` runs the cost-gated
    /// algebraic rewriter on each plan.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// The backend this session dispatches to.
    pub fn backend(&self) -> Backend {
        match self.config.parallelism {
            Some(threads) if threads >= 2 => Backend::Parallel { threads },
            _ => Backend::Sequential,
        }
    }

    /// The fingerprint of the session's registry Σ (part of every cache key).
    pub fn registry_fingerprint(&self) -> u64 {
        *self
            .registry_fingerprint
            .get_or_init(|| self.config.registry.fingerprint())
    }

    /// Replace the registry Σ. Plans prepared under the old registry are keyed
    /// by its fingerprint and therefore invisible afterwards: the next
    /// `prepare` of the same text re-runs the front end against the new Σ.
    pub fn set_registry(&mut self, registry: ExternRegistry) {
        self.registry_fingerprint = OnceLock::new();
        self.config.registry = registry;
    }

    /// Counters describing the prepared-statement cache (aggregated over all
    /// shards; the hit/miss tallies are lock-free atomics).
    pub fn cache_metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            evictions: self.cache.evictions(),
            len: self.cache.len(),
            capacity: self.cache.capacity(),
        }
    }

    /// Prepare a closed query from its surface text: parse, type-check against
    /// the session's registry, analyse recursion depth, and pretty-print the
    /// normal form — once. Repeated calls with the same text return a handle
    /// to the *same* cached plan ([`PreparedQuery::ptr_eq`]).
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, Error> {
        self.prepare_with_schema(text, &[])
    }

    /// Prepare a query with free variables, declared by `schema` as
    /// name-to-type bindings. Execution must later supply a value for each
    /// declared name ([`Session::execute_with_bindings`]).
    pub fn prepare_with_schema(
        &self,
        text: &str,
        schema: &[(String, Type)],
    ) -> Result<PreparedQuery, Error> {
        let key = PlanKey::new(text, schema, self.registry_fingerprint(), self.opt_level);
        if let Some(plan) = self.cache.get(&key) {
            // The findings were computed with the plan and live on it, so a
            // deny policy also rejects cache hits — the cache amortizes the
            // front end, never the policy decision.
            self.enforce_lint_policy(&plan)?;
            return Ok(PreparedQuery { plan });
        }
        let expr = ncql_surface::parse(text)?;
        let plan = Arc::new(self.analyze(Some(text.to_string()), expr, schema)?);
        // Double-checked insert: no lock is held across the front end, so two
        // threads can race to first-prepare the same text. Whoever inserts
        // first wins and the loser adopts the winner's plan, keeping the
        // same-`Arc` contract for every handle ever returned (both front-end
        // runs are counted as misses).
        let plan = self.cache.insert_if_absent(key, plan);
        self.enforce_lint_policy(&plan)?;
        Ok(PreparedQuery { plan })
    }

    /// Prepare a closed query from a pre-built [`Expr`] (the Rust builder
    /// API). The full front end except parsing runs — typecheck, analysis,
    /// normal form — but the result is *not* cached: builder-API expressions
    /// have no canonical text to key by, and the caller already holds the
    /// amortization handle (the returned [`PreparedQuery`]).
    pub fn prepare_expr(&self, expr: Expr) -> Result<PreparedQuery, Error> {
        self.prepare_expr_with_schema(expr, &[])
    }

    /// [`Session::prepare_expr`] for an open expression with a declared
    /// schema.
    pub fn prepare_expr_with_schema(
        &self,
        expr: Expr,
        schema: &[(String, Type)],
    ) -> Result<PreparedQuery, Error> {
        let plan = Arc::new(self.analyze(None, expr, schema)?);
        self.enforce_lint_policy(&plan)?;
        Ok(PreparedQuery { plan })
    }

    /// The front end minus parsing: typecheck against the session registry
    /// under the declared schema, the cost-gated algebraic rewriter (at
    /// [`OptLevel::Default`]), recursion-depth analysis, static cost/lint
    /// analysis, normal form.
    ///
    /// Provenance of the stored analysis is deliberately split. The *lint
    /// findings* come from the raw expression, so their spans and messages
    /// describe the source text the user wrote (an unused binding the
    /// optimizer folds away is still the user's unused binding, and a rewrite
    /// can never introduce a syntactic finding the user cannot see). The
    /// *cost bounds* — and the doomed-work check below — come from the
    /// rewritten plan, because that is the plan the session executes:
    /// [`PreparedQuery::analysis`] must bound what `execute` will actually
    /// charge, and a query the optimizer made feasible must not be rejected
    /// for the raw plan's floor.
    fn analyze(
        &self,
        source: Option<String>,
        expr: Expr,
        schema: &[(String, Type)],
    ) -> Result<PreparedPlan, Error> {
        let mut env = TypeEnv::new();
        for (name, ty) in schema {
            env = env.extend(name.clone(), ty.clone());
        }
        let ty = infer(&env, &self.config.registry, &expr)?;
        let raw_analysis = analyze_query(&expr, schema, &self.config.registry);
        let normal_form = ncql_surface::print_expr(&expr);
        // Like the findings, the §3 recursion depth and ACᵏ level classify
        // the query the user wrote — folding a closed `dcr` to a constant
        // does not change which uniform circuit family the query names.
        let depth = analysis::recursion_depth(&expr);
        let ac_level = analysis::ac_level(&expr);
        let (expr, mut query_analysis, rewrites, cost_before) = match self.opt_level {
            OptLevel::None => (expr, raw_analysis, Vec::new(), None),
            OptLevel::Default => {
                // Keep the raw expression's findings: syntactic lints must
                // describe the source text, not the rewritten plan.
                let raw_findings = raw_analysis.findings.clone();
                let outcome = optimize_analyzed(&expr, schema, &self.config, raw_analysis);
                let mut stored = outcome.analysis;
                let cost_before = (!outcome.fired.is_empty()).then_some(outcome.cost_before);
                stored.findings = raw_findings;
                (outcome.expr, stored, outcome.fired, cost_before)
            }
        };
        // The doomed-query check needs the session's work limit, which the
        // core analyser does not know: a work *floor* above `max_work` means
        // every evaluation is guaranteed to abort with `WorkLimitExceeded`,
        // however the schema relations are bound (the floor is the
        // all-cardinalities-zero minimum). It runs on the rewritten plan's
        // floor — the cost the session will actually pay.
        let floor = query_analysis.cost.work_floor_min();
        if floor > self.config.max_work {
            query_analysis.findings.push(Finding {
                lint: Lint::DoomedWorkBound,
                severity: Lint::DoomedWorkBound.default_severity(),
                message: format!(
                    "query needs at least {floor} work but the session limit is {}; \
                     evaluation is guaranteed to exceed the work limit",
                    self.config.max_work
                ),
                span: expr.span,
            });
        }
        // The kernel compiler's prepare-time pass over the *executing* plan:
        // deterministic in (body, shape, registry), so a site reported
        // compiled here is exactly a site the evaluator runs through a row
        // kernel whenever its argument set is columnar and kernels are on.
        let kernel_sites = ncql_core::kernel::analyze_sites(&expr, &self.config.registry);
        Ok(PreparedPlan {
            source,
            ty,
            schema: schema.to_vec(),
            depth,
            ac_level,
            optimized_form: ncql_surface::print_expr(&expr),
            normal_form,
            analysis: query_analysis,
            opt_level: self.opt_level,
            rewrites,
            cost_before,
            kernel_sites,
            expr,
        })
    }

    /// Reject the plan when the session's policy is deny and the analysis
    /// produced a deny-level finding. Runs on every prepare path, cache hits
    /// included.
    fn enforce_lint_policy(&self, plan: &PreparedPlan) -> Result<(), Error> {
        if self.lint_policy == LintPolicy::Deny {
            if let Some(finding) = plan.analysis.deny_findings().next() {
                return Err(Error::Lint {
                    message: format!("{}: {}", finding.lint.name(), finding.message),
                    span: finding.span,
                });
            }
        }
        Ok(())
    }

    /// Execute a prepared closed query on the session's backend, paying only
    /// evaluation cost.
    pub fn execute(&self, query: &PreparedQuery) -> Result<Outcome, Error> {
        self.execute_with_bindings(query, &[])
    }

    /// Execute a prepared query with its schema's free variables bound to the
    /// given values.
    ///
    /// The bindings are validated against the schema declared at preparation
    /// time before evaluation starts: a missing binding, a duplicated name,
    /// or a value whose type does not match the declaration is rejected as
    /// [`Error::Object`] — the checked pipeline never hands an ill-typed
    /// value to the evaluator. Bindings for names the schema does not declare
    /// are ignored.
    pub fn execute_with_bindings(
        &self,
        query: &PreparedQuery,
        bindings: &[(String, Value)],
    ) -> Result<Outcome, Error> {
        self.execute_with_options(query, bindings, &ExecOptions::default())
    }

    /// [`Session::execute_with_bindings`] with per-execution overrides: a
    /// cancellation token and/or tightened resource limits for this one
    /// request (see [`ExecOptions`]). The serving front end routes every
    /// request through here — a deadline watchdog cancels over-deadline
    /// evaluations, and per-request work budgets keep one expensive query
    /// from starving the rest of the traffic on the shared session.
    pub fn execute_with_options(
        &self,
        query: &PreparedQuery,
        bindings: &[(String, Value)],
        options: &ExecOptions,
    ) -> Result<Outcome, Error> {
        for (name, ty) in query.schema() {
            // Binding errors point at the schema variable's first use site in
            // the prepared source text (None for span-less builder plans).
            let use_site = || analysis::free_var_span(query.expr(), name);
            let mut matching = bindings.iter().filter(|(bound, _)| bound == name);
            match (matching.next(), matching.next()) {
                (None, _) => {
                    return Err(Error::Object {
                        source: ObjectError::TypeMismatch {
                            expected: format!(
                                "a binding for schema variable `{name}` of type {ty}"
                            ),
                            found: "no binding with that name".to_string(),
                        },
                        span: use_site(),
                    })
                }
                // A duplicated name is rejected outright: validation would
                // otherwise vouch for one occurrence while the evaluator's
                // environment (last binding shadows) resolves another.
                (Some(_), Some(_)) => {
                    return Err(Error::Object {
                        source: ObjectError::TypeMismatch {
                            expected: format!("exactly one binding for schema variable `{name}`"),
                            found: "multiple bindings with that name".to_string(),
                        },
                        span: use_site(),
                    })
                }
                (Some((_, value)), None) if !value.has_type(ty) => {
                    return Err(Error::Object {
                        source: ObjectError::TypeMismatch {
                            expected: format!("{ty} for schema variable `{name}`"),
                            found: value_type(value).to_string(),
                        },
                        span: use_site(),
                    })
                }
                (Some(_), None) => {}
            }
        }
        self.eval_raw(query.expr(), bindings, options)
            .map_err(Error::from)
    }

    /// Execute one prepared query over a batch of binding sets, returning one
    /// outcome per set. The front end ran once at `prepare` time; each element
    /// pays evaluation only. Errors are per-element: one failing binding set
    /// does not abort the rest of the batch.
    pub fn execute_many<B: AsRef<[(String, Value)]>>(
        &self,
        query: &PreparedQuery,
        batches: &[B],
    ) -> Vec<Result<Outcome, Error>> {
        batches
            .iter()
            .map(|bindings| self.execute_with_bindings(query, bindings.as_ref()))
            .collect()
    }

    /// Prepare (or fetch from the cache) and execute in one call — the
    /// convenience path for one-shot callers like the REPL.
    pub fn run(&self, text: &str) -> Result<Outcome, Error> {
        let query = self.prepare(text)?;
        self.execute(&query)
    }

    /// Evaluate a pre-built closed expression directly, skipping the front end
    /// entirely (no parse, no typecheck, no caching). This is the trusted-AST
    /// fast path for corpus runners and differential suites whose expressions
    /// come straight from the builder API; because nothing but evaluation
    /// runs, the error type is exactly [`EvalError`] — bit-compatible with the
    /// historical entry points. Prefer [`Session::prepare_expr`] +
    /// [`Session::execute`] when you want the checked pipeline.
    pub fn evaluate(&self, expr: &Expr) -> Result<Outcome, EvalError> {
        self.eval_raw(expr, &[], &ExecOptions::default())
    }

    /// [`Session::evaluate`] with free variables bound to values.
    pub fn evaluate_with_bindings(
        &self,
        expr: &Expr,
        bindings: &[(String, Value)],
    ) -> Result<Outcome, EvalError> {
        self.eval_raw(expr, bindings, &ExecOptions::default())
    }

    /// The session's work-stealing pool, created on first use. Only the
    /// parallel dispatch path ever calls this, so sequential sessions stay
    /// pool-free.
    fn pool(&self) -> Arc<WorkStealingPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkStealingPool::with_config(self.config.pool_config())))
            .clone()
    }

    /// Dispatch one evaluation onto the configured backend.
    fn eval_raw(
        &self,
        expr: &Expr,
        bindings: &[(String, Value)],
        options: &ExecOptions,
    ) -> Result<Outcome, EvalError> {
        let backend = self.backend();
        // Per-execution limits only ever tighten the session's: min of the
        // two, so a request cannot talk a shared deployment past its caps.
        let mut config = self.config.clone();
        if let Some(limit) = options.max_work {
            config.max_work = config.max_work.min(limit);
        }
        if let Some(limit) = options.max_set_size {
            config.max_set_size = config.max_set_size.min(limit);
        }
        let (value, stats): (Value, CostStats) = match backend {
            Backend::Parallel { .. } => {
                let mut evaluator = ParallelEvaluator::with_config(config);
                // One pool per session: every execution forks onto the same
                // persistent worker set instead of growing its own.
                evaluator.attach_pool(self.pool());
                if let Some(token) = &options.cancel {
                    evaluator.attach_cancel(token.clone());
                }
                let value = evaluator.eval_with_bindings(expr, bindings)?;
                (value, evaluator.stats())
            }
            Backend::Sequential => {
                let mut evaluator = Evaluator::new(config);
                if let Some(token) = &options.cancel {
                    evaluator.attach_cancel(token.clone());
                }
                let value = evaluator.eval_with_bindings(expr, bindings)?;
                (value, evaluator.stats())
            }
        };
        Ok(Outcome {
            value,
            stats,
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_are_send_and_sync() {
        // The docs promise one session can serve many threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<Outcome>();
    }

    #[test]
    fn plan_keys_distinguish_optimizer_levels() {
        // Regression: the cache key must carry the optimizer configuration.
        // Two sessions (or one session whose configuration is later made
        // mutable, like `set_registry`) differing only in `OptLevel` produce
        // different plans for the same text; a key that ignored the level
        // would let one serve the other's plan.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let raw = PlanKey::new("{@1} union {@2}", &[], 7, OptLevel::None);
        let opt = PlanKey::new("{@1} union {@2}", &[], 7, OptLevel::Default);
        assert_ne!(raw, opt);
        let digest = |key: &PlanKey| {
            let mut hasher = DefaultHasher::new();
            key.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(digest(&raw), digest(&opt));
    }

    #[test]
    fn optimizer_runs_by_default_and_none_disables_it() {
        // The duplicated-operand union is closed, so the default level folds
        // it; `OptLevel::None` must leave the raw AST untouched.
        let text = "{@1} union {@2} union {@1}";
        let optimized = Session::new().prepare(text).unwrap();
        assert_eq!(optimized.opt_level(), OptLevel::Default);
        assert!(!optimized.rewrites().is_empty());
        assert!(optimized.raw_cost().is_some());
        let raw = Session::builder()
            .opt_level(OptLevel::None)
            .build()
            .prepare(text)
            .unwrap();
        assert_eq!(raw.opt_level(), OptLevel::None);
        assert!(raw.rewrites().is_empty());
        assert!(raw.raw_cost().is_none());
        assert_eq!(raw.optimized_form(), raw.normal_form());
        assert_ne!(optimized.optimized_form(), optimized.normal_form());
        // The two plans agree on the value, and the optimized plan never
        // measures more work.
        let opt_out = Session::new().run(text).unwrap();
        let raw_out = Session::builder()
            .opt_level(OptLevel::None)
            .build()
            .run(text)
            .unwrap();
        assert_eq!(opt_out.value, raw_out.value);
        assert!(opt_out.stats.work <= raw_out.stats.work);
    }

    #[test]
    fn prepare_execute_round_trip() {
        let session = Session::new();
        let q = session.prepare("nat_add(20, 22)").unwrap();
        assert_eq!(q.ty().to_string(), "nat");
        assert_eq!(q.recursion_depth(), 0);
        assert_eq!(q.ac_level(), 1);
        assert_eq!(q.source(), Some("nat_add(20, 22)"));
        let out = session.execute(&q).unwrap();
        assert_eq!(out.value, Value::Nat(42));
        assert_eq!(out.backend, Backend::Sequential);
        assert!(out.stats.work > 0);
    }

    #[test]
    fn cache_hits_share_the_plan() {
        let session = Session::new();
        let a = session.prepare("{@1} union {@2}").unwrap();
        let b = session.prepare("{@1} union {@2}").unwrap();
        assert!(a.ptr_eq(&b));
        let metrics = session.cache_metrics();
        assert_eq!((metrics.hits, metrics.misses, metrics.len), (1, 1, 1));
        // Different text is a different plan.
        let c = session.prepare("{@1} union {@3}").unwrap();
        assert!(!a.ptr_eq(&c));
    }

    #[test]
    fn concurrent_first_preparations_converge_on_one_plan() {
        let session = Session::new();
        let text = "ext(\\x: atom. {x}, {@1} union {@2} union {@3})";
        let handles: Vec<PreparedQuery> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| session.prepare(text).unwrap()))
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        // Whatever interleaving happened, every handle shares one plan, and a
        // later prepare joins it too.
        for pair in handles.windows(2) {
            assert!(pair[0].ptr_eq(&pair[1]));
        }
        assert!(session.prepare(text).unwrap().ptr_eq(&handles[0]));
        assert_eq!(session.cache_metrics().len, 1);
    }

    #[test]
    fn concurrent_preparations_hammer_every_shard() {
        // A capacity ≥ the sharding threshold gives the full sharded cache;
        // 64 distinct texts spread over the shards by key hash. 8 threads ×
        // 64 texts race first-preparation of every text, then every handle is
        // checked against a fresh prepare: the same-`Arc` contract must hold
        // per text no matter which shard its key landed in.
        let session = Session::builder().cache_capacity(256).build();
        let texts: Vec<String> = (0..64)
            .map(|n| format!("{{@{n}}} union {{@{}}}", n + 1))
            .collect();
        let per_thread: Vec<Vec<PreparedQuery>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|t| {
                    let texts = &texts;
                    let session = &session;
                    scope.spawn(move || {
                        // Stagger the iteration order per thread so shards see
                        // interleaved traffic, not a lockstep sweep.
                        (0..texts.len())
                            .map(|i| {
                                let text = &texts[(i + t * 13) % texts.len()];
                                session.prepare(text).unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        for (i, text) in texts.iter().enumerate() {
            let canonical = session.prepare(text).unwrap();
            for handles in &per_thread {
                let handle = handles
                    .iter()
                    .find(|h| h.source() == Some(text.as_str()))
                    .expect("every thread prepared every text");
                assert!(
                    handle.ptr_eq(&canonical),
                    "text #{i} diverged across shards"
                );
            }
        }
        let metrics = session.cache_metrics();
        assert_eq!(metrics.len, texts.len(), "all plans cached, none evicted");
        assert_eq!(metrics.capacity, 256);
        // 8 threads × 64 prepares + 64 canonical re-prepares; at least one
        // front-end run per text, and every later prepare was a hit unless it
        // lost a first-preparation race.
        assert_eq!(metrics.hits + metrics.misses, 8 * 64 + 64);
        assert!(metrics.misses >= 64);
        assert!(metrics.hits >= 7 * 64);
    }

    #[test]
    fn parallel_and_sequential_sessions_agree() {
        let text = "dcr(0, \\x: atom. atom_to_nat(x), \
                    \\p: (nat * nat). nat_add(pi1 p, pi2 p), \
                    {@4} union {@7} union {@9})";
        let seq = Session::new();
        let par = Session::builder()
            .parallelism(Some(4))
            .parallel_cutoff(1)
            .build();
        let a = seq.run(text).unwrap();
        let b = par.run(text).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.backend, Backend::Sequential);
        assert_eq!(b.backend, Backend::Parallel { threads: 4 });
        assert_eq!(a.value, Value::Nat(20));
    }

    #[test]
    fn degenerate_parallelism_is_normalized_at_build() {
        for requested in [None, Some(0), Some(1)] {
            let session = Session::builder().parallelism(requested).build();
            assert_eq!(
                session.config().parallelism,
                None,
                "requested {requested:?}"
            );
            assert_eq!(session.backend(), Backend::Sequential);
        }
    }

    #[test]
    fn schema_and_bindings_parameterize_a_query() {
        let session = Session::new();
        let schema = vec![("s".to_string(), Type::set(Type::Base))];
        let q = session
            .prepare_with_schema("ext(\\x: atom. {x}, s) union {@99}", &schema)
            .unwrap();
        let batches: Vec<Vec<(String, Value)>> = (0..3u64)
            .map(|n| vec![("s".to_string(), Value::atom_set(0..n))])
            .collect();
        let outcomes = session.execute_many(&q, &batches);
        for (n, out) in outcomes.into_iter().enumerate() {
            let value = out.unwrap().value;
            assert_eq!(value.cardinality(), Some(n + 1), "n atoms plus @99");
        }
    }

    #[test]
    fn ill_typed_or_missing_bindings_are_rejected_before_evaluation() {
        let session = Session::new();
        let schema = vec![("s".to_string(), Type::set(Type::Base))];
        let q = session.prepare_with_schema("card(s)", &schema).unwrap();
        // Wrong type: a bool where a set of atoms was declared.
        match session.execute_with_bindings(&q, &[("s".to_string(), Value::Bool(true))]) {
            Err(Error::Object {
                source: ObjectError::TypeMismatch { expected, found },
                ..
            }) => {
                assert!(expected.contains("`s`"), "{expected}");
                assert_eq!(found, "bool");
            }
            other => panic!("expected a binding type mismatch, got {other:?}"),
        }
        // Missing binding: the schema variable was never supplied.
        match session.execute_with_bindings(&q, &[("t".to_string(), Value::atom_set(0..2))]) {
            Err(Error::Object {
                source: ObjectError::TypeMismatch { expected, .. },
                ..
            }) => {
                assert!(expected.contains("`s`"), "{expected}");
            }
            other => panic!("expected a missing-binding error, got {other:?}"),
        }
        // A duplicated name is rejected even when one occurrence is well-typed
        // (the evaluator would resolve the shadowing last occurrence).
        match session.execute_with_bindings(
            &q,
            &[
                ("s".to_string(), Value::atom_set(0..3)),
                ("s".to_string(), Value::Bool(true)),
            ],
        ) {
            Err(Error::Object {
                source: ObjectError::TypeMismatch { expected, found },
                ..
            }) => {
                assert!(expected.contains("exactly one"), "{expected}");
                assert!(found.contains("multiple"), "{found}");
            }
            other => panic!("expected a duplicate-binding error, got {other:?}"),
        }
        // A correct binding (plus an ignored extra) evaluates.
        let out = session
            .execute_with_bindings(
                &q,
                &[
                    ("s".to_string(), Value::atom_set(0..3)),
                    ("unused".to_string(), Value::Bool(false)),
                ],
            )
            .unwrap();
        assert_eq!(out.value, Value::Nat(3));
    }

    #[test]
    fn prepare_runs_the_static_analysis_once_per_plan() {
        let session = Session::new();
        let schema = vec![("s".to_string(), Type::set(Type::Base))];
        let q = session
            .prepare_with_schema("ext(\\x: atom. {x}, s)", &schema)
            .unwrap();
        let analysis = q.analysis();
        // The work bound is symbolic in |s|: it grows with the cardinality.
        let at = |n: u64| {
            analysis
                .cost
                .work
                .eval(&|name| (name == "s").then_some(n))
                .expect("bound is finite in |s|")
        };
        assert!(at(100) > at(1), "bound grows with |s|: {}", analysis.cost);
        // A cache hit shares the same analysis (same plan).
        let again = session
            .prepare_with_schema("ext(\\x: atom. {x}, s)", &schema)
            .unwrap();
        assert!(again.ptr_eq(&q));
    }

    #[test]
    fn warn_policy_reports_doomed_queries_but_still_prepares() {
        let session = Session::builder().max_work(3).build();
        assert_eq!(session.lint_policy(), LintPolicy::Warn);
        let q = session.prepare("{@1} union {@2}").unwrap();
        let doomed: Vec<_> = q
            .analysis()
            .findings
            .iter()
            .filter(|f| f.lint == Lint::DoomedWorkBound)
            .collect();
        assert_eq!(doomed.len(), 1, "exactly one doomed-work-bound finding");
        assert!(
            doomed[0].message.contains("limit is 3"),
            "{}",
            doomed[0].message
        );
        // Warn never rejects; the evaluator raises the limit error instead.
        match session.execute(&q) {
            Err(Error::Eval(e)) => assert!(e.to_string().contains("work")),
            other => panic!("expected an eval-time work-limit error, got {other:?}"),
        }
    }

    #[test]
    fn deny_policy_rejects_doomed_queries_before_evaluation() {
        let session = Session::builder()
            .max_work(3)
            .lint_policy(LintPolicy::Deny)
            .build();
        let text = "{@1} union {@2}";
        match session.prepare(text) {
            Err(err @ Error::Lint { .. }) => {
                assert!(err.to_string().starts_with("lint error: doomed-work-bound"));
                assert!(err.span().is_some(), "rejection carries the query span");
                assert!(err.render(text).contains('^'), "caret diagnostic renders");
            }
            other => panic!("expected a lint rejection, got {other:?}"),
        }
        // The rejection holds on the cache-hit path too.
        match session.prepare(text) {
            Err(Error::Lint { .. }) => {}
            other => panic!("expected a lint rejection on the cache hit, got {other:?}"),
        }
        // A harmless query still prepares and runs under the deny policy.
        let ok = Session::builder()
            .lint_policy(LintPolicy::Deny)
            .build()
            .run(text)
            .unwrap();
        assert_eq!(ok.value.cardinality(), Some(2));
    }

    #[test]
    fn deny_policy_rejects_ignored_combiner_arguments() {
        // A dcr combiner that drops its first argument cannot be associative
        // with identity — `wellformed` would flag it at runtime; the lint
        // rejects it at prepare.
        let text = "dcr(empty[atom], \\x: atom. {x}, \
                    \\p: ({atom} * {atom}). pi2 p, {@1} union {@2})";
        let deny = Session::builder().lint_policy(LintPolicy::Deny).build();
        match deny.prepare(text) {
            Err(err @ Error::Lint { .. }) => {
                assert!(
                    err.to_string().contains("ignored-combiner-argument"),
                    "{err}"
                );
            }
            other => panic!("expected a lint rejection, got {other:?}"),
        }
        // The default policy only reports it.
        let warn = Session::new();
        let q = warn.prepare(text).unwrap();
        assert!(q
            .analysis()
            .findings
            .iter()
            .any(|f| f.lint == Lint::IgnoredCombinerArgument));
    }

    #[test]
    fn type_errors_surface_through_the_unified_error() {
        let session = Session::new();
        match session.prepare("pi1 true") {
            Err(Error::Type(_)) => {}
            other => panic!("expected a type error, got {other:?}"),
        }
        match session.prepare("nat_add(1") {
            Err(e @ Error::Parse(_)) => assert!(e.position().is_some()),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_extern_is_a_type_error_under_an_empty_registry() {
        let session = Session::builder().registry(ExternRegistry::empty()).build();
        match session.prepare("nat_add(1, 2)") {
            Err(Error::Type(e)) => match e.kind {
                ncql_core::TypeErrorKind::UnknownExtern(name) => assert_eq!(name, "nat_add"),
                other => panic!("expected UnknownExtern, got {other:?}"),
            },
            other => panic!("expected UnknownExtern, got {other:?}"),
        }
    }
}
