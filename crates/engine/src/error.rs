//! The one error type at the engine's API boundary.
//!
//! The workspace grew three unrelated error enums — [`ParseError`] from the
//! surface crate (which itself wraps the lexer's positioned [`LexError`]),
//! [`TypeError`] from the type checker, and [`EvalError`] from the evaluator —
//! plus [`ObjectError`] from the object model. Every consumer of the old
//! scattered entry points had to match on whichever subset its hand-wired
//! pipeline could produce. [`Error`] folds them into a single enum with
//! `Display` and `std::error::Error` implementations, so a `Session` caller
//! handles one type end to end and still gets the source-position context the
//! lexer/parser recorded.

use ncql_core::{EvalError, TypeError};
use ncql_object::ObjectError;
use ncql_surface::{LexError, ParseError};
use std::fmt;

/// Any error the engine's prepare → execute pipeline can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The query text failed to lex or parse. Carries the surface crate's
    /// error, including the byte position the lexer/parser recorded.
    Parse(ParseError),
    /// The parsed query failed to type-check against the session's registry Σ.
    Type(TypeError),
    /// Evaluation failed (stuck term, extern failure, resource limit, worker
    /// panic).
    Eval(EvalError),
    /// An object-model operation failed (value typing, encoding/decoding).
    Object(ObjectError),
}

impl Error {
    /// The position in the query text at which the error was detected, when
    /// the failure happened in the front end and a position is known: the
    /// lexer's *byte offset* for a lexical error, the parser's *token index*
    /// for an unexpected token. Type, evaluation and object errors are
    /// positionless (the AST does not carry spans yet).
    pub fn position(&self) -> Option<usize> {
        match self {
            Error::Parse(ParseError::Lex(LexError { position, .. })) => Some(*position),
            Error::Parse(ParseError::Unexpected { position, .. }) => Some(*position),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Lex/parse errors already self-describe ("lex error at byte N",
            // "parse error at token N"), so no prefix is added.
            Error::Parse(e) => write!(f, "{e}"),
            Error::Type(e) => write!(f, "type error: {e}"),
            Error::Eval(e) => write!(f, "evaluation error: {e}"),
            Error::Object(e) => write!(f, "object error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Type(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Object(e) => Some(e),
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<LexError> for Error {
    fn from(e: LexError) -> Error {
        Error::Parse(ParseError::Lex(e))
    }
}

impl From<TypeError> for Error {
    fn from(e: TypeError) -> Error {
        Error::Type(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Error {
        Error::Eval(e)
    }
}

impl From<ObjectError> for Error {
    fn from(e: ObjectError) -> Error {
        Error::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn parse_errors_carry_the_lexer_position() {
        let err: Error = ncql_surface::parse("{@1} union $").unwrap_err().into();
        assert!(matches!(err, Error::Parse(_)));
        assert_eq!(err.position(), Some(11), "byte offset of the `$`");
        assert!(err.to_string().starts_with("lex error at byte 11"));
        assert!(err.source().is_some());
    }

    #[test]
    fn eval_errors_are_positionless_but_sourced() {
        let err = Error::from(EvalError::WorkLimitExceeded { limit: 7 });
        assert_eq!(err.position(), None);
        assert!(err.to_string().contains("limit of 7"));
        assert!(err.source().is_some());
    }
}
