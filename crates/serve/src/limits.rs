//! Admission control: a counting semaphore over evaluation slots.
//!
//! The server admits at most `max_inflight` concurrent *evaluations*, that
//! is, prepare and execute requests; connections themselves are cheap and
//! unlimited. A request that
//! cannot get a slot within the admission timeout is answered with a typed
//! `busy` error instead of queueing unboundedly — the client decides whether
//! to retry, so overload sheds load at the edge rather than accumulating
//! latency inside the server.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A counting semaphore (std-only: `Mutex` + `Condvar`).
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// A semaphore with `permits` slots. Zero permits admits nothing — every
    /// acquire times out — which is occasionally useful in tests.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Acquire a permit, waiting at most `timeout`. Returns a guard that
    /// releases on drop, or `None` if the timeout elapsed first.
    pub fn try_acquire_for(&self, timeout: Duration) -> Option<SemaphoreGuard<'_>> {
        let deadline = Instant::now() + timeout;
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        loop {
            if *permits > 0 {
                *permits -= 1;
                return Some(SemaphoreGuard { semaphore: self });
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, result) = self
                .available
                .wait_timeout(permits, remaining)
                .expect("semaphore poisoned");
            permits = next;
            if result.timed_out() && *permits == 0 {
                return None;
            }
        }
    }

    fn release(&self) {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }
}

/// An acquired evaluation slot; dropping it releases the slot.
#[derive(Debug)]
pub struct SemaphoreGuard<'a> {
    semaphore: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        self.semaphore.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permits_bound_concurrency() {
        let sem = Semaphore::new(2);
        let a = sem.try_acquire_for(Duration::from_millis(10)).unwrap();
        let _b = sem.try_acquire_for(Duration::from_millis(10)).unwrap();
        assert!(sem.try_acquire_for(Duration::from_millis(10)).is_none());
        drop(a);
        assert!(sem.try_acquire_for(Duration::from_millis(10)).is_some());
    }

    #[test]
    fn waiters_wake_on_release() {
        let sem = Arc::new(Semaphore::new(1));
        let held = sem.try_acquire_for(Duration::from_millis(10)).unwrap();
        let waiter = {
            let sem = Arc::clone(&sem);
            std::thread::spawn(move || sem.try_acquire_for(Duration::from_secs(5)).is_some())
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn zero_permit_semaphore_always_times_out() {
        let sem = Semaphore::new(0);
        assert!(sem.try_acquire_for(Duration::from_millis(5)).is_none());
    }
}
