//! Durable architecture lints, enforced as a test so they run on every CI
//! leg without extra tooling.
//!
//! 1. **Single front door.** `Evaluator`/`ParallelEvaluator` may only be
//!    constructed inside the core crate (they live there), the engine crate
//!    (the one supported dispatch point, `Session::eval_raw`), and their
//!    tests. Everything else goes through `ncql_engine::Session`. A short
//!    allowlist grandfathers the pre-`Session` call sites; removing one of
//!    those files without pruning the allowlist fails the test, so the list
//!    can only shrink.
//! 2. **No ad-hoc scoped threads on the evaluator hot path.** The parallel
//!    backend went through a per-region `std::thread::scope` phase before the
//!    persistent work-stealing pool replaced it; this lint keeps
//!    `thread::scope` out of the evaluator and pool implementation files
//!    (test modules excepted) so the regression cannot sneak back.

use std::fs;
use std::path::{Path, PathBuf};

/// Repo root: root-level integration tests run with the workspace manifest
/// directory as cwd.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every `.rs` file under the repo's own source trees (vendored dependencies
/// and build output excluded).
fn rust_sources() -> Vec<PathBuf> {
    let root = repo_root();
    let mut out = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("readable source dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if matches!(name, "target" | "vendor" | ".git" | ".claude") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    assert!(
        out.len() > 20,
        "source walk looks broken: {} files",
        out.len()
    );
    out
}

fn relative(path: &Path) -> String {
    path.strip_prefix(repo_root())
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Strip `//` line comments (good enough here: no constructor call we police
/// spans a string literal containing `//`).
fn without_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

#[test]
fn evaluators_are_constructed_only_behind_the_session_front_door() {
    // Call sites that predate the unified `Session` API and deliberately
    // drive the evaluators directly: the Proposition 7.3 translation check,
    // the benches (which measure evaluator overhead without cache effects),
    // and the powerset module's cost-assertion tests.
    const ALLOWLIST: &[&str] = &[
        "crates/translate/src/prop73.rs",
        "crates/bench/src/lib.rs",
        "crates/bench/benches/e8_bounded_vs_unbounded.rs",
        "crates/queries/src/powerset.rs",
    ];
    let constructors = ["Evaluator::new(", "Evaluator::with_config("];

    let sources = rust_sources();
    for allowed in ALLOWLIST {
        assert!(
            sources.iter().any(|p| relative(p) == *allowed),
            "stale allowlist entry {allowed}: prune it from this test"
        );
    }

    let mut violations = Vec::new();
    for path in &sources {
        let rel = relative(path);
        // The types live in core and are dispatched by the engine; both may
        // construct them freely (their unit/integration tests included).
        if rel.starts_with("crates/core/") || rel.starts_with("crates/engine/") {
            continue;
        }
        if ALLOWLIST.contains(&rel.as_str()) {
            continue;
        }
        // This file holds the patterns it polices.
        if rel == "tests/arch_lint.rs" {
            continue;
        }
        let text = fs::read_to_string(path).expect("readable source file");
        for (lineno, line) in text.lines().enumerate() {
            let code = without_line_comment(line);
            if constructors.iter().any(|c| code.contains(c)) {
                violations.push(format!("{rel}:{}: {}", lineno + 1, line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "Evaluator constructed outside core/engine/the allowlist — \
         go through ncql_engine::Session instead:\n{}",
        violations.join("\n")
    );
}

#[test]
fn no_scoped_threads_on_the_evaluator_hot_path() {
    // The files that implement evaluation and the worker pool. Test modules
    // (everything from the first `#[cfg(test)]` on) may use scoped threads
    // to probe concurrency; the implementation itself must fork onto the
    // persistent pool.
    const HOT_PATH: &[&str] = &[
        "crates/core/src/eval.rs",
        "crates/core/src/parallel.rs",
        "crates/pram/src/lib.rs",
    ];
    for rel in HOT_PATH {
        let path = repo_root().join(rel);
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("hot-path file {rel} must exist: {e}"));
        let implementation = match text.find("#[cfg(test)]") {
            Some(idx) => &text[..idx],
            None => &text[..],
        };
        for (lineno, line) in implementation.lines().enumerate() {
            let code = without_line_comment(line);
            assert!(
                !code.contains("thread::scope"),
                "{rel}:{}: scoped thread on the evaluator hot path — \
                 fork onto the persistent work-stealing pool instead: {}",
                lineno + 1,
                line.trim()
            );
        }
    }
}
