//! Derived operations expressible in NRA (§3).
//!
//! The paper notes that NRA "is powerful enough to express the following
//! functions: set difference, set intersection, cartesian product, database
//! projections, equalities at all types, selections over predicates definable in
//! the language, nest and unnest". This module provides exactly those, as
//! *expression builders*: each function assembles the NRA expression that
//! computes the operation, so that everything downstream (evaluation, cost
//! accounting, translation, circuit compilation) still sees pure language terms.
//!
//! Builders take the element types they need because λ-binders are annotated.

use crate::expr::{fresh_var, Expr};
use ncql_object::Type;

/// Boolean negation `not e` — definable as `if e then false else true`.
pub fn not(e: Expr) -> Expr {
    Expr::ite(e, Expr::bool_val(false), Expr::bool_val(true))
}

/// Boolean conjunction.
pub fn and(a: Expr, b: Expr) -> Expr {
    Expr::ite(a, b, Expr::bool_val(false))
}

/// Boolean disjunction.
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::ite(a, Expr::bool_val(true), b)
}

/// Exclusive or — the combiner of the parity example in §1.
pub fn xor(a: Expr, b: Expr) -> Expr {
    let x = fresh_var("x");
    let y = fresh_var("y");
    Expr::let_in(
        x.clone(),
        a,
        Expr::let_in(
            y.clone(),
            b,
            Expr::ite(Expr::var(x), not(Expr::var(y.clone())), Expr::var(y)),
        ),
    )
}

/// Membership `x ∈ s` for element type `t`:
/// `¬ empty( ext(λy. if y = x then {()} else ∅)(s) )`.
pub fn member(elem_ty: Type, x: Expr, s: Expr) -> Expr {
    let xv = fresh_var("melem");
    let y = fresh_var("y");
    Expr::let_in(
        xv.clone(),
        x,
        not(Expr::is_empty(Expr::ext(
            Expr::lam(
                y.clone(),
                elem_ty,
                Expr::ite(
                    Expr::eq(Expr::var(y), Expr::var(xv)),
                    Expr::singleton(Expr::unit()),
                    Expr::empty(Type::Unit),
                ),
            ),
            s,
        ))),
    )
}

/// Set intersection `r ∩ s` at element type `t`:
/// `ext(λy. if y ∈ s then {y} else ∅)(r)`.
pub fn intersect(elem_ty: Type, r: Expr, s: Expr) -> Expr {
    let sv = fresh_var("iset");
    let y = fresh_var("y");
    Expr::let_in(
        sv.clone(),
        s,
        Expr::ext(
            Expr::lam(
                y.clone(),
                elem_ty.clone(),
                Expr::ite(
                    member(elem_ty.clone(), Expr::var(y.clone()), Expr::var(sv)),
                    Expr::singleton(Expr::var(y)),
                    Expr::empty(elem_ty),
                ),
            ),
            r,
        ),
    )
}

/// Set difference `r \ s` at element type `t`.
pub fn difference(elem_ty: Type, r: Expr, s: Expr) -> Expr {
    let sv = fresh_var("dset");
    let y = fresh_var("y");
    Expr::let_in(
        sv.clone(),
        s,
        Expr::ext(
            Expr::lam(
                y.clone(),
                elem_ty.clone(),
                Expr::ite(
                    member(elem_ty.clone(), Expr::var(y.clone()), Expr::var(sv)),
                    Expr::empty(elem_ty),
                    Expr::singleton(Expr::var(y)),
                ),
            ),
            r,
        ),
    )
}

/// Subset test `r ⊆ s` at element type `t`: `empty(r \ s)`.
pub fn subset(elem_ty: Type, r: Expr, s: Expr) -> Expr {
    Expr::is_empty(difference(elem_ty, r, s))
}

/// Cartesian product `r × s` for element types `(a, b)`:
/// `ext(λx. ext(λy. {(x, y)})(s))(r)`.
pub fn cartesian_product(a_ty: Type, b_ty: Type, r: Expr, s: Expr) -> Expr {
    let sv = fresh_var("cpset");
    let x = fresh_var("x");
    let y = fresh_var("y");
    Expr::let_in(
        sv.clone(),
        s,
        Expr::ext(
            Expr::lam(
                x.clone(),
                a_ty,
                Expr::ext(
                    Expr::lam(
                        y.clone(),
                        b_ty,
                        Expr::singleton(Expr::pair(Expr::var(x.clone()), Expr::var(y))),
                    ),
                    Expr::var(sv),
                ),
            ),
            r,
        ),
    )
}

/// Map `f` over a set: `ext(λx. {f(x)})(s)`. `f` is given as a builder from the
/// bound variable expression to the image expression.
pub fn map_set<F: FnOnce(Expr) -> Expr>(elem_ty: Type, s: Expr, f: F) -> Expr {
    let x = fresh_var("x");
    Expr::ext(
        Expr::lam(x.clone(), elem_ty, Expr::singleton(f(Expr::var(x)))),
        s,
    )
}

/// Filter a set by a predicate (relational *selection*): `ext(λx. if p(x) then
/// {x} else ∅)(s)`.
pub fn select<F: FnOnce(Expr) -> Expr>(elem_ty: Type, s: Expr, predicate: F) -> Expr {
    let x = fresh_var("x");
    Expr::ext(
        Expr::lam(
            x.clone(),
            elem_ty.clone(),
            Expr::ite(
                predicate(Expr::var(x.clone())),
                Expr::singleton(Expr::var(x)),
                Expr::empty(elem_ty),
            ),
        ),
        s,
    )
}

/// Relational projection Π₁ of a relation of type `{a × b}`.
pub fn project1(a_ty: Type, b_ty: Type, r: Expr) -> Expr {
    map_set(Type::prod(a_ty, b_ty), r, Expr::proj1)
}

/// Relational projection Π₂ of a relation of type `{a × b}`.
pub fn project2(a_ty: Type, b_ty: Type, r: Expr) -> Expr {
    map_set(Type::prod(a_ty, b_ty), r, Expr::proj2)
}

/// Relation composition `r ∘ s` for `r : {a × b}`, `s : {b × c}`:
/// `{(x, z) | (x, y) ∈ r, (y', z) ∈ s, y = y'}`.
pub fn compose(a_ty: Type, b_ty: Type, c_ty: Type, r: Expr, s: Expr) -> Expr {
    let sv = fresh_var("cset");
    let p = fresh_var("p");
    let q = fresh_var("q");
    let rp_ty = Type::prod(a_ty.clone(), b_ty.clone());
    let sp_ty = Type::prod(b_ty, c_ty.clone());
    let out_ty = Type::prod(a_ty, c_ty);
    Expr::let_in(
        sv.clone(),
        s,
        Expr::ext(
            Expr::lam(
                p.clone(),
                rp_ty,
                Expr::ext(
                    Expr::lam(
                        q.clone(),
                        sp_ty,
                        Expr::ite(
                            Expr::eq(
                                Expr::proj2(Expr::var(p.clone())),
                                Expr::proj1(Expr::var(q.clone())),
                            ),
                            Expr::singleton(Expr::pair(
                                Expr::proj1(Expr::var(p.clone())),
                                Expr::proj2(Expr::var(q)),
                            )),
                            Expr::empty(out_ty.clone()),
                        ),
                    ),
                    Expr::var(sv),
                ),
            ),
            r,
        ),
    )
}

/// Flatten a set of sets: `ext(λs. s)(ss)` — the "big union".
pub fn flatten(elem_ty: Type, ss: Expr) -> Expr {
    let s = fresh_var("s");
    Expr::ext(Expr::lam(s.clone(), Type::set(elem_ty), Expr::var(s)), ss)
}

/// Unnest `{(a × {b})} → {(a × b)}`.
pub fn unnest(a_ty: Type, b_ty: Type, r: Expr) -> Expr {
    let p = fresh_var("p");
    let y = fresh_var("y");
    Expr::ext(
        Expr::lam(
            p.clone(),
            Type::prod(a_ty, Type::set(b_ty.clone())),
            Expr::ext(
                Expr::lam(
                    y.clone(),
                    b_ty,
                    Expr::singleton(Expr::pair(Expr::proj1(Expr::var(p.clone())), Expr::var(y))),
                ),
                Expr::proj2(Expr::var(p)),
            ),
        ),
        r,
    )
}

/// Nest `{(a × b)} → {(a × {b})}`: group the second components by the first.
pub fn nest(a_ty: Type, b_ty: Type, r: Expr) -> Expr {
    let rv = fresh_var("nrel");
    let p = fresh_var("p");
    let q = fresh_var("q");
    let pair_ty = Type::prod(a_ty, b_ty.clone());
    Expr::let_in(
        rv.clone(),
        r,
        Expr::ext(
            Expr::lam(
                p.clone(),
                pair_ty.clone(),
                Expr::singleton(Expr::pair(
                    Expr::proj1(Expr::var(p.clone())),
                    Expr::ext(
                        Expr::lam(
                            q.clone(),
                            pair_ty,
                            Expr::ite(
                                Expr::eq(
                                    Expr::proj1(Expr::var(q.clone())),
                                    Expr::proj1(Expr::var(p.clone())),
                                ),
                                Expr::singleton(Expr::proj2(Expr::var(q))),
                                Expr::empty(b_ty.clone()),
                            ),
                        ),
                        Expr::var(rv.clone()),
                    ),
                )),
            ),
            Expr::var(rv),
        ),
    )
}

/// `ext(f)` expressed through `sru` as the paper remarks: `sru(∅, λx.{x}, ∪)`
/// post-composed with `f` — provided here to let tests confirm the equivalence
/// (and the span penalty of the derived form, which needs `log n` combining
/// steps instead of one parallel step).
pub fn ext_via_sru(elem_ty: Type, result_elem_ty: Type, f: Expr, s: Expr) -> Expr {
    let x = fresh_var("x");
    Expr::sru(
        Expr::empty(result_elem_ty.clone()),
        Expr::lam(x.clone(), elem_ty, Expr::app(f, Expr::var(x))),
        union_combiner(result_elem_ty),
        s,
    )
}

/// The union combiner `λ(a, b). a ∪ b` at set-of-`t` type, a building block for
/// many recursions.
pub fn union_combiner(elem_ty: Type) -> Expr {
    let ty = Type::set(elem_ty);
    Expr::lam2(
        "a",
        "b",
        Type::prod(ty.clone(), ty),
        Expr::union(Expr::var("a"), Expr::var("b")),
    )
}

/// `get : {D} × D → D` from §7.1: `get(x, y) = if x = {z} then z else y` —
/// extracts the unique element of a singleton set, with a default. Definable with
/// `dcr` but not with `log-loop`; provided as a builder over `dcr` exactly as the
/// paper uses it (to strip the final singleton produced by the halving
/// simulation). Works at any element type `t` that is *not* required to be a
/// PS-type because it uses plain `dcr`.
pub fn get_singleton(elem_ty: Type, x: Expr, default: Expr) -> Expr {
    let d = fresh_var("default");
    let y = fresh_var("y");
    Expr::let_in(
        d.clone(),
        default,
        Expr::dcr(
            Expr::var(d.clone()),
            Expr::lam(y.clone(), elem_ty.clone(), Expr::var(y)),
            // Combiner: if either side is the default we keep the other; on a
            // genuine singleton input the combiner is never applied, so any
            // commutative choice works. We pick "left if equal else left" — for
            // singleton inputs dcr applies f once and never u.
            Expr::lam2(
                "a",
                "b",
                Type::prod(elem_ty.clone(), elem_ty),
                Expr::ite(
                    Expr::eq(Expr::var("a"), Expr::var(d)),
                    Expr::var("b"),
                    Expr::var("a"),
                ),
            ),
            x,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_closed;
    use crate::typecheck::typecheck_closed;
    use ncql_object::Value;

    fn atoms(v: Vec<u64>) -> Expr {
        Expr::constant(Value::atom_set(v))
    }

    fn rel(pairs: Vec<(u64, u64)>) -> Expr {
        Expr::constant(Value::relation_from_pairs(pairs))
    }

    #[test]
    fn boolean_connectives() {
        assert_eq!(
            eval_closed(&and(Expr::bool_val(true), Expr::bool_val(false))).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_closed(&or(Expr::bool_val(false), Expr::bool_val(true))).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_closed(&not(Expr::bool_val(false))).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_closed(&xor(Expr::bool_val(true), Expr::bool_val(true))).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_closed(&xor(Expr::bool_val(true), Expr::bool_val(false))).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn member_and_subset() {
        let e = member(Type::Base, Expr::atom(2), atoms(vec![1, 2, 3]));
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
        let e2 = member(Type::Base, Expr::atom(9), atoms(vec![1, 2, 3]));
        assert_eq!(eval_closed(&e2).unwrap(), Value::Bool(false));
        let s = subset(Type::Base, atoms(vec![1, 3]), atoms(vec![1, 2, 3]));
        assert_eq!(eval_closed(&s).unwrap(), Value::Bool(true));
        let s2 = subset(Type::Base, atoms(vec![1, 4]), atoms(vec![1, 2, 3]));
        assert_eq!(eval_closed(&s2).unwrap(), Value::Bool(false));
    }

    #[test]
    fn intersect_difference_typecheck_and_evaluate() {
        let i = intersect(Type::Base, atoms(vec![1, 2, 3]), atoms(vec![2, 3, 4]));
        assert!(typecheck_closed(&i).is_ok());
        assert_eq!(eval_closed(&i).unwrap(), Value::atom_set(vec![2, 3]));
        let d = difference(Type::Base, atoms(vec![1, 2, 3]), atoms(vec![2, 3, 4]));
        assert_eq!(eval_closed(&d).unwrap(), Value::atom_set(vec![1]));
    }

    #[test]
    fn cartesian_product_works() {
        let p = cartesian_product(Type::Base, Type::Base, atoms(vec![1, 2]), atoms(vec![3, 4]));
        assert!(typecheck_closed(&p).is_ok());
        assert_eq!(
            eval_closed(&p).unwrap(),
            Value::relation_from_pairs(vec![(1, 3), (1, 4), (2, 3), (2, 4)])
        );
    }

    #[test]
    fn projections_and_selection() {
        let r = rel(vec![(1, 10), (2, 20)]);
        assert_eq!(
            eval_closed(&project1(Type::Base, Type::Base, r.clone())).unwrap(),
            Value::atom_set(vec![1, 2])
        );
        assert_eq!(
            eval_closed(&project2(Type::Base, Type::Base, r.clone())).unwrap(),
            Value::atom_set(vec![10, 20])
        );
        let sel = select(Type::prod(Type::Base, Type::Base), r, |p| {
            Expr::leq(Expr::proj1(p), Expr::atom(1))
        });
        assert_eq!(
            eval_closed(&sel).unwrap(),
            Value::relation_from_pairs(vec![(1, 10)])
        );
    }

    #[test]
    fn composition_of_relations() {
        let r = rel(vec![(1, 2), (2, 3)]);
        let s = rel(vec![(2, 5), (3, 6)]);
        let c = compose(Type::Base, Type::Base, Type::Base, r, s);
        assert!(typecheck_closed(&c).is_ok());
        assert_eq!(
            eval_closed(&c).unwrap(),
            Value::relation_from_pairs(vec![(1, 5), (2, 6)])
        );
    }

    #[test]
    fn flatten_nest_unnest() {
        let nested = Expr::constant(Value::set_from(vec![
            Value::atom_set(vec![1, 2]),
            Value::atom_set(vec![2, 3]),
        ]));
        assert_eq!(
            eval_closed(&flatten(Type::Base, nested)).unwrap(),
            Value::atom_set(vec![1, 2, 3])
        );

        let r = rel(vec![(1, 10), (1, 11), (2, 20)]);
        let n = nest(Type::Base, Type::Base, r.clone());
        assert!(typecheck_closed(&n).is_ok());
        let expected = Value::set_from(vec![
            Value::pair(Value::Atom(1), Value::atom_set(vec![10, 11])),
            Value::pair(Value::Atom(2), Value::atom_set(vec![20])),
        ]);
        assert_eq!(eval_closed(&n).unwrap(), expected);

        // unnest ∘ nest = identity on relations.
        let un = unnest(Type::Base, Type::Base, n);
        assert_eq!(
            eval_closed(&un).unwrap(),
            Value::relation_from_pairs(vec![(1, 10), (1, 11), (2, 20)])
        );
    }

    #[test]
    fn ext_via_sru_agrees_with_primitive_ext() {
        let f = Expr::lam(
            "z",
            Type::Base,
            Expr::union(
                Expr::singleton(Expr::var("z")),
                Expr::singleton(Expr::atom(0)),
            ),
        );
        let direct = Expr::ext(f.clone(), atoms(vec![1, 2, 3]));
        let derived = ext_via_sru(Type::Base, Type::Base, f, atoms(vec![1, 2, 3]));
        assert_eq!(
            eval_closed(&direct).unwrap(),
            eval_closed(&derived).unwrap()
        );
    }

    #[test]
    fn get_extracts_singleton_element() {
        let g = get_singleton(Type::Base, atoms(vec![42]), Expr::atom(0));
        assert_eq!(eval_closed(&g).unwrap(), Value::Atom(42));
        let empty = get_singleton(Type::Base, Expr::empty(Type::Base), Expr::atom(7));
        assert_eq!(eval_closed(&empty).unwrap(), Value::Atom(7));
    }

    #[test]
    fn derived_forms_typecheck() {
        let checks = vec![
            member(Type::Base, Expr::atom(1), atoms(vec![1])),
            intersect(Type::Base, atoms(vec![1]), atoms(vec![2])),
            difference(Type::Base, atoms(vec![1]), atoms(vec![2])),
            subset(Type::Base, atoms(vec![1]), atoms(vec![2])),
            cartesian_product(Type::Base, Type::Base, atoms(vec![1]), atoms(vec![2])),
            flatten(
                Type::Base,
                Expr::constant(Value::set_from(vec![Value::atom_set(vec![1])])),
            ),
            nest(Type::Base, Type::Base, rel(vec![(1, 2)])),
            unnest(
                Type::Base,
                Type::Base,
                Expr::constant(Value::set_from(vec![Value::pair(
                    Value::Atom(1),
                    Value::atom_set(vec![2]),
                )])),
            ),
        ];
        for e in checks {
            typecheck_closed(&e).unwrap_or_else(|err| panic!("{err} in {e}"));
        }
    }
}
