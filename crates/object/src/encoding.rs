//! String and bit-level encodings of complex objects (§5 of the paper), plus the
//! Immerman-style positional encoding of flat relations used by the circuit
//! compiler.
//!
//! The paper encodes complex objects as strings over the eight-symbol alphabet
//!
//! ```text
//! A = { 0, 1, {, }, (, ), comma, blank }
//! ```
//!
//! with: atoms of `D` written in binary, `true`/`false` as `1`/`0`, the empty
//! tuple as `()`, pairs as `(X1,X2)`, and sets as `{X1,...,Xm}` *without
//! duplicates*. Blanks may be scattered anywhere except inside binary numbers.
//! Each symbol is then represented by three bits, so an encoding of length ℓ
//! symbols becomes a bit string of length 3ℓ.
//!
//! A *minimal encoding* of a value `x` contains no blanks and renumbers the atoms
//! of `x` as `0, 1, …, m−1` in order.
//!
//! For flat relations the paper notes that this string encoding and Immerman's
//! positional encoding (a relation of type `{Dᵏ}` over a universe of size `n` as a
//! characteristic bit-vector of length `nᵏ`) are inter-translatable in AC⁰/AC¹;
//! both are provided here, since the circuit compiler works on the positional one.

use crate::error::ObjectError;
use crate::types::Type;
use crate::value::{Atom, VSet, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One symbol of the eight-symbol alphabet `A` of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Symbol {
    /// The digit `0` (also encodes `false`).
    Zero,
    /// The digit `1` (also encodes `true`).
    One,
    /// Opening brace `{`.
    LBrace,
    /// Closing brace `}`.
    RBrace,
    /// Opening parenthesis `(`.
    LParen,
    /// Closing parenthesis `)`.
    RParen,
    /// The separator `,`.
    Comma,
    /// A blank. Blanks may appear anywhere except inside binary numbers.
    Blank,
}

impl Symbol {
    /// The 3-bit code of the symbol (bit 2 is the most significant).
    pub fn to_bits(self) -> [bool; 3] {
        let n = self as u8;
        [(n >> 2) & 1 == 1, (n >> 1) & 1 == 1, n & 1 == 1]
    }

    /// Decode a 3-bit code back into a symbol.
    pub fn from_bits(bits: [bool; 3]) -> Symbol {
        let n = (bits[0] as u8) << 2 | (bits[1] as u8) << 1 | (bits[2] as u8);
        match n {
            0 => Symbol::Zero,
            1 => Symbol::One,
            2 => Symbol::LBrace,
            3 => Symbol::RBrace,
            4 => Symbol::LParen,
            5 => Symbol::RParen,
            6 => Symbol::Comma,
            _ => Symbol::Blank,
        }
    }

    /// The display character of the symbol (blank shown as `_` for readability).
    pub fn as_char(self) -> char {
        match self {
            Symbol::Zero => '0',
            Symbol::One => '1',
            Symbol::LBrace => '{',
            Symbol::RBrace => '}',
            Symbol::LParen => '(',
            Symbol::RParen => ')',
            Symbol::Comma => ',',
            Symbol::Blank => '_',
        }
    }

    /// Parse a display character back into a symbol.
    pub fn from_char(c: char) -> Option<Symbol> {
        match c {
            '0' => Some(Symbol::Zero),
            '1' => Some(Symbol::One),
            '{' => Some(Symbol::LBrace),
            '}' => Some(Symbol::RBrace),
            '(' => Some(Symbol::LParen),
            ')' => Some(Symbol::RParen),
            ',' => Some(Symbol::Comma),
            '_' | ' ' => Some(Symbol::Blank),
            _ => None,
        }
    }
}

/// A string over the alphabet `A`: an encoding (not necessarily minimal) of some
/// complex object.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SymbolString {
    symbols: Vec<Symbol>,
}

impl SymbolString {
    /// The empty string.
    pub fn new() -> SymbolString {
        SymbolString {
            symbols: Vec::new(),
        }
    }

    /// Wrap an explicit symbol sequence.
    pub fn from_symbols(symbols: Vec<Symbol>) -> SymbolString {
        SymbolString { symbols }
    }

    /// Parse the display form (e.g. `"{(0,1),(1,10)}"`).
    pub fn parse(s: &str) -> Result<SymbolString, ObjectError> {
        let mut symbols = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match Symbol::from_char(c) {
                Some(sym) => symbols.push(sym),
                None => {
                    return Err(ObjectError::Decode {
                        position: i,
                        message: format!("invalid symbol character {c:?}"),
                    })
                }
            }
        }
        Ok(SymbolString { symbols })
    }

    /// Length in symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Is the string empty?
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols as a slice.
    pub fn as_slice(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Append one symbol.
    pub fn push(&mut self, s: Symbol) {
        self.symbols.push(s);
    }

    /// View as a bit string, three bits per symbol (the `{0,1}*` view of §5).
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(self.symbols.len() * 3);
        for s in &self.symbols {
            bits.extend_from_slice(&s.to_bits());
        }
        bits
    }

    /// Rebuild a symbol string from its 3-bits-per-symbol view. The bit length
    /// must be a multiple of three.
    pub fn from_bits(bits: &[bool]) -> Result<SymbolString, ObjectError> {
        if !bits.len().is_multiple_of(3) {
            return Err(ObjectError::Decode {
                position: bits.len(),
                message: "bit length is not a multiple of 3".to_string(),
            });
        }
        let symbols = bits
            .chunks_exact(3)
            .map(|c| Symbol::from_bits([c[0], c[1], c[2]]))
            .collect();
        Ok(SymbolString { symbols })
    }

    /// Remove all blanks (blank removal is the AC¹ step discussed in §5; here it
    /// is just a filter).
    pub fn without_blanks(&self) -> SymbolString {
        SymbolString {
            symbols: self
                .symbols
                .iter()
                .copied()
                .filter(|s| *s != Symbol::Blank)
                .collect(),
        }
    }

    /// Insert blanks between symbols — produces a valid, non-minimal encoding of
    /// the same object (used to test that the decoder tolerates blanks). Blanks
    /// are never inserted *inside* a binary number, per §5.
    pub fn with_scattered_blanks(&self) -> SymbolString {
        let is_digit = |s: Symbol| matches!(s, Symbol::Zero | Symbol::One);
        let mut symbols = Vec::with_capacity(self.symbols.len() * 2);
        for (i, s) in self.symbols.iter().enumerate() {
            symbols.push(*s);
            let next_is_digit = self
                .symbols
                .get(i + 1)
                .map(|n| is_digit(*n))
                .unwrap_or(false);
            if !(is_digit(*s) && next_is_digit) {
                symbols.push(Symbol::Blank);
            }
        }
        SymbolString { symbols }
    }
}

impl fmt::Display for SymbolString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.symbols {
            write!(f, "{}", s.as_char())?;
        }
        Ok(())
    }
}

fn encode_number(n: u64, out: &mut SymbolString) {
    // Binary, most significant bit first, at least one digit.
    if n == 0 {
        out.push(Symbol::Zero);
        return;
    }
    let bits = 64 - n.leading_zeros();
    for i in (0..bits).rev() {
        out.push(if (n >> i) & 1 == 1 {
            Symbol::One
        } else {
            Symbol::Zero
        });
    }
}

fn encode_value(v: &Value, out: &mut SymbolString) {
    match v {
        Value::Atom(a) => encode_number(*a, out),
        Value::Nat(n) => encode_number(*n, out),
        Value::Bool(b) => out.push(if *b { Symbol::One } else { Symbol::Zero }),
        Value::Unit => {
            out.push(Symbol::LParen);
            out.push(Symbol::RParen);
        }
        Value::Pair(a, b) => {
            out.push(Symbol::LParen);
            encode_value(a, out);
            out.push(Symbol::Comma);
            encode_value(b, out);
            out.push(Symbol::RParen);
        }
        Value::Set(s) => {
            out.push(Symbol::LBrace);
            for (i, x) in s.iter().enumerate() {
                if i > 0 {
                    out.push(Symbol::Comma);
                }
                encode_value(x, out);
            }
            out.push(Symbol::RBrace);
        }
    }
}

/// Encode a value as a symbol string with no blanks and the atoms written with
/// their native identifiers. This is a valid encoding `x ~ X` in the sense of §5.
pub fn encode(v: &Value) -> SymbolString {
    let mut out = SymbolString::new();
    encode_value(v, &mut out);
    out
}

/// The *minimal encoding* of §5: no blanks, and the atoms of the value renumbered
/// `0 … m−1` in increasing order. Returns the encoding together with the atom
/// renumbering that was applied (old atom ↦ new code).
pub fn minimal_encoding(v: &Value) -> (SymbolString, BTreeMap<Atom, u64>) {
    let atoms = v.atoms();
    let renumber: BTreeMap<Atom, u64> = atoms
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i as u64))
        .collect();
    let renamed = rename_atoms(v, &renumber);
    (encode(&renamed), renumber)
}

fn rename_atoms(v: &Value, map: &BTreeMap<Atom, u64>) -> Value {
    match v {
        Value::Atom(a) => Value::Atom(*map.get(a).unwrap_or(a)),
        Value::Bool(_) | Value::Unit | Value::Nat(_) => v.clone(),
        Value::Pair(a, b) => Value::pair(rename_atoms(a, map), rename_atoms(b, map)),
        Value::Set(s) => Value::set_from(s.iter().map(|x| rename_atoms(x, map))),
    }
}

struct Decoder<'a> {
    symbols: &'a [Symbol],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(symbols: &'a [Symbol]) -> Decoder<'a> {
        Decoder { symbols, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ObjectError {
        ObjectError::Decode {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_blanks(&mut self) {
        while self.pos < self.symbols.len() && self.symbols[self.pos] == Symbol::Blank {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<Symbol> {
        self.skip_blanks();
        self.symbols.get(self.pos).copied()
    }

    fn expect(&mut self, s: Symbol) -> Result<(), ObjectError> {
        match self.peek() {
            Some(found) if found == s => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(self.error(format!(
                "expected {:?} but found {:?}",
                s.as_char(),
                found.as_char()
            ))),
            None => Err(self.error(format!("expected {:?} but found end of input", s.as_char()))),
        }
    }

    fn decode_number(&mut self) -> Result<u64, ObjectError> {
        self.skip_blanks();
        let mut digits = Vec::new();
        while let Some(sym) = self.symbols.get(self.pos) {
            match sym {
                Symbol::Zero => digits.push(0u64),
                Symbol::One => digits.push(1),
                _ => break,
            }
            self.pos += 1;
        }
        if digits.is_empty() {
            return Err(self.error("expected a binary number"));
        }
        if digits.len() > 64 {
            return Err(self.error("binary number too large"));
        }
        Ok(digits.iter().fold(0u64, |acc, d| (acc << 1) | d))
    }

    fn decode(&mut self, ty: &Type) -> Result<Value, ObjectError> {
        match ty {
            Type::Base => self.decode_number().map(Value::Atom),
            Type::Nat => self.decode_number().map(Value::Nat),
            Type::Bool => match self.peek() {
                Some(Symbol::Zero) => {
                    self.pos += 1;
                    Ok(Value::Bool(false))
                }
                Some(Symbol::One) => {
                    self.pos += 1;
                    Ok(Value::Bool(true))
                }
                _ => Err(self.error("expected a boolean (0 or 1)")),
            },
            Type::Unit => {
                self.expect(Symbol::LParen)?;
                self.expect(Symbol::RParen)?;
                Ok(Value::Unit)
            }
            Type::Prod(a, b) => {
                self.expect(Symbol::LParen)?;
                let x = self.decode(a)?;
                self.expect(Symbol::Comma)?;
                let y = self.decode(b)?;
                self.expect(Symbol::RParen)?;
                Ok(Value::pair(x, y))
            }
            Type::Set(t) => {
                self.expect(Symbol::LBrace)?;
                let mut elems = Vec::new();
                if self.peek() == Some(Symbol::RBrace) {
                    self.pos += 1;
                    return Ok(Value::Set(VSet::empty()));
                }
                loop {
                    elems.push(self.decode(t)?);
                    match self.peek() {
                        Some(Symbol::Comma) => {
                            self.pos += 1;
                        }
                        Some(Symbol::RBrace) => {
                            self.pos += 1;
                            break;
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected ',' or '}}' in set, found {:?}",
                                other.map(Symbol::as_char)
                            )))
                        }
                    }
                }
                Ok(Value::set_from(elems))
            }
            Type::Fun(_, _) => Err(self.error("function types have no value encoding")),
        }
    }

    fn finish(&mut self) -> Result<(), ObjectError> {
        self.skip_blanks();
        if self.pos != self.symbols.len() {
            Err(self.error("trailing symbols after a complete value"))
        } else {
            Ok(())
        }
    }
}

/// Decode a symbol string as a value of the given type. Blanks are tolerated
/// anywhere (per §5); duplicates inside sets are removed by canonicalisation.
pub fn decode(s: &SymbolString, ty: &Type) -> Result<Value, ObjectError> {
    let mut d = Decoder::new(s.as_slice());
    let v = d.decode(ty)?;
    d.finish()?;
    Ok(v)
}

/// Decode a 3-bits-per-symbol bit string as a value of the given type.
pub fn decode_bits(bits: &[bool], ty: &Type) -> Result<Value, ObjectError> {
    decode(&SymbolString::from_bits(bits)?, ty)
}

/// The Immerman-style *positional encoding* of a k-ary flat relation over an
/// ordered universe of size `n`: a characteristic bit vector of length `nᵏ`
/// listing, in lexicographic order of tuples, which tuples are present.
///
/// Only unary (`{D}`) and binary (`{D × D}`) relations are needed by the circuit
/// compiler, so those are what this structure supports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionalRelation {
    /// Universe size `n`; atoms are `0 … n−1`.
    pub universe: usize,
    /// Arity (1 or 2).
    pub arity: usize,
    /// The characteristic vector, length `universe.pow(arity)`.
    pub bits: Vec<bool>,
}

impl PositionalRelation {
    /// Encode a unary or binary relation value over atoms `0 … n−1`.
    pub fn from_value(v: &Value, universe: usize) -> Result<PositionalRelation, ObjectError> {
        let set = v
            .as_set()
            .ok_or_else(|| ObjectError::NotFlat(format!("expected a set, got {v}")))?;
        // Determine arity from the first element (empty sets default to binary).
        let arity = match set.iter().next() {
            None => 2,
            Some(Value::Atom(_)) => 1,
            Some(Value::Pair(a, b)) if a.as_atom().is_some() && b.as_atom().is_some() => 2,
            Some(other) => {
                return Err(ObjectError::NotFlat(format!(
                    "element {other} is not an atom or a pair of atoms"
                )))
            }
        };
        let mut bits = vec![false; universe.pow(arity as u32)];
        for elem in set.iter() {
            match (arity, elem) {
                (1, Value::Atom(a)) => {
                    let a = *a as usize;
                    if a >= universe {
                        return Err(ObjectError::UniverseTooSmall {
                            required: a + 1,
                            available: universe,
                        });
                    }
                    bits[a] = true;
                }
                (2, Value::Pair(x, y)) => {
                    let (a, b) = match (x.as_atom(), y.as_atom()) {
                        (Some(a), Some(b)) => (a as usize, b as usize),
                        _ => {
                            return Err(ObjectError::NotFlat(format!(
                                "element {elem} is not a pair of atoms"
                            )))
                        }
                    };
                    if a >= universe || b >= universe {
                        return Err(ObjectError::UniverseTooSmall {
                            required: a.max(b) + 1,
                            available: universe,
                        });
                    }
                    bits[a * universe + b] = true;
                }
                _ => {
                    return Err(ObjectError::NotFlat(format!(
                        "mixed arities inside the relation (element {elem})"
                    )))
                }
            }
        }
        Ok(PositionalRelation {
            universe,
            arity,
            bits,
        })
    }

    /// Decode back into a relation value over atoms `0 … n−1`.
    pub fn to_value(&self) -> Value {
        match self.arity {
            1 => Value::atom_set(
                self.bits
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| **b)
                    .map(|(i, _)| i as u64),
            ),
            _ => Value::relation_from_pairs(
                self.bits
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| **b)
                    .map(|(i, _)| ((i / self.universe) as u64, (i % self.universe) as u64)),
            ),
        }
    }

    /// Number of tuples present.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<(Value, Type)> {
        vec![
            (Value::Bool(true), Type::Bool),
            (Value::Bool(false), Type::Bool),
            (Value::Unit, Type::Unit),
            (Value::Atom(0), Type::Base),
            (Value::Atom(13), Type::Base),
            (Value::Nat(255), Type::Nat),
            (
                Value::pair(Value::Atom(5), Value::Bool(true)),
                Type::prod(Type::Base, Type::Bool),
            ),
            (
                Value::relation_from_pairs(vec![(0, 1), (1, 2), (2, 0)]),
                Type::binary_relation(),
            ),
            (Value::empty_set(), Type::set(Type::Base)),
            (
                Value::set_from(vec![
                    Value::atom_set(vec![1, 2]),
                    Value::atom_set(vec![]),
                    Value::atom_set(vec![3]),
                ]),
                Type::set(Type::set(Type::Base)),
            ),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for (v, ty) in sample_values() {
            let s = encode(&v);
            let back = decode(&s, &ty).unwrap_or_else(|e| panic!("decode {s}: {e}"));
            assert_eq!(back, v, "round trip failed for {v} via {s}");
        }
    }

    #[test]
    fn bit_round_trip_uses_three_bits_per_symbol() {
        let v = Value::relation_from_pairs(vec![(0, 1), (2, 3)]);
        let s = encode(&v);
        let bits = s.to_bits();
        assert_eq!(bits.len(), 3 * s.len());
        let back = decode_bits(&bits, &Type::binary_relation()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn decoder_tolerates_scattered_blanks() {
        let v = Value::set_from(vec![Value::pair(Value::Atom(2), Value::Atom(5))]);
        let blanks = encode(&v).with_scattered_blanks();
        let back = decode(&blanks, &Type::binary_relation()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn minimal_encoding_renumbers_atoms() {
        let v = Value::atom_set(vec![100, 7, 55]);
        let (s, map) = minimal_encoding(&v);
        assert_eq!(map.get(&7), Some(&0));
        assert_eq!(map.get(&55), Some(&1));
        assert_eq!(map.get(&100), Some(&2));
        // Decoded minimal encoding is {0,1,10} = atoms 0,1,2.
        let back = decode(&s, &Type::unary_relation()).unwrap();
        assert_eq!(back, Value::atom_set(vec![0, 1, 2]));
        assert!(!s.as_slice().contains(&Symbol::Blank));
    }

    #[test]
    fn symbol_bits_round_trip() {
        for sym in [
            Symbol::Zero,
            Symbol::One,
            Symbol::LBrace,
            Symbol::RBrace,
            Symbol::LParen,
            Symbol::RParen,
            Symbol::Comma,
            Symbol::Blank,
        ] {
            assert_eq!(Symbol::from_bits(sym.to_bits()), sym);
            assert_eq!(Symbol::from_char(sym.as_char()), Some(sym));
        }
    }

    #[test]
    fn display_and_parse_round_trip() {
        let v = Value::pair(Value::Atom(3), Value::atom_set(vec![1]));
        let s = encode(&v);
        let text = s.to_string();
        assert_eq!(text, "(11,{1})");
        let parsed = SymbolString::parse(&text).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut s = encode(&Value::Atom(1));
        s.push(Symbol::Comma);
        assert!(decode(&s, &Type::Base).is_err());
    }

    #[test]
    fn decode_rejects_wrong_shape() {
        let s = encode(&Value::pair(Value::Atom(1), Value::Atom(2)));
        assert!(decode(&s, &Type::unary_relation()).is_err());
    }

    #[test]
    fn positional_round_trip_binary() {
        let v = Value::relation_from_pairs(vec![(0, 1), (1, 2), (3, 3)]);
        let p = PositionalRelation::from_value(&v, 4).unwrap();
        assert_eq!(p.bits.len(), 16);
        assert_eq!(p.count(), 3);
        assert_eq!(p.to_value(), v);
    }

    #[test]
    fn positional_round_trip_unary() {
        let v = Value::atom_set(vec![0, 2, 3]);
        let p = PositionalRelation::from_value(&v, 5).unwrap();
        assert_eq!(p.bits.len(), 5);
        assert_eq!(p.to_value(), v);
    }

    #[test]
    fn positional_rejects_out_of_universe_atoms() {
        let v = Value::atom_set(vec![9]);
        assert!(matches!(
            PositionalRelation::from_value(&v, 4),
            Err(ObjectError::UniverseTooSmall { .. })
        ));
    }

    #[test]
    fn positional_rejects_nested_sets() {
        let v = Value::set_from(vec![Value::atom_set(vec![1])]);
        assert!(matches!(
            PositionalRelation::from_value(&v, 4),
            Err(ObjectError::NotFlat(_))
        ));
    }

    #[test]
    fn encoding_of_sets_has_no_duplicates() {
        // Even if the constructor receives duplicates, canonicalisation removes
        // them, so the encoding never contains duplicate elements (§5).
        let v = Value::set_from(vec![Value::Atom(1), Value::Atom(1), Value::Atom(2)]);
        let s = encode(&v).to_string();
        assert_eq!(s, "{1,10}");
    }
}
