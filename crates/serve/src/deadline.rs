//! Wall-clock deadlines for in-flight evaluations.
//!
//! Evaluation in this workspace is cooperative: every elementary step passes
//! through the evaluator's work-accounting choke point, which polls the
//! request's [`CancelToken`]. The watchdog here is
//! the other half of that contract — one background thread holding a min-heap
//! of armed deadlines, cancelling each token whose deadline passes. A single
//! thread suffices for any number of concurrent requests; registering and
//! disarming are O(log n) heap operations under one mutex.
//!
//! The handler thread registers a deadline before evaluating and drops the
//! returned [`DeadlineGuard`] when evaluation finishes, which disarms the
//! entry (lazily: the heap entry stays until it surfaces, then is skipped).

use ncql_engine::CancelToken;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Entry {
    due: Instant,
    id: u64,
    token: CancelToken,
    reason: String,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.id.cmp(&other.id))
    }
}

#[derive(Debug, Default)]
struct State {
    heap: BinaryHeap<Reverse<Entry>>,
    disarmed: HashSet<u64>,
    next_id: u64,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<State>,
    changed: Condvar,
}

/// A watchdog thread that fires [`CancelToken`]s when their wall-clock
/// deadlines pass.
#[derive(Debug)]
pub struct DeadlineWatchdog {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl DeadlineWatchdog {
    /// Start the watchdog thread.
    pub fn new() -> DeadlineWatchdog {
        let shared = Arc::new(Shared::default());
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("ncql-deadline".to_string())
            .spawn(move || run(worker_shared))
            .expect("spawn deadline watchdog");
        DeadlineWatchdog {
            shared,
            worker: Some(worker),
        }
    }

    /// Arm `token` to be cancelled (with `reason`) once `deadline` elapses
    /// from now. Dropping the guard disarms the deadline.
    pub fn register(
        &self,
        token: &CancelToken,
        deadline: Duration,
        reason: impl Into<String>,
    ) -> DeadlineGuard {
        let mut state = self.shared.state.lock().expect("watchdog poisoned");
        let id = state.next_id;
        state.next_id += 1;
        state.heap.push(Reverse(Entry {
            due: Instant::now() + deadline,
            id,
            token: token.clone(),
            reason: reason.into(),
        }));
        drop(state);
        self.shared.changed.notify_one();
        DeadlineGuard {
            shared: Arc::clone(&self.shared),
            id,
        }
    }
}

impl Default for DeadlineWatchdog {
    fn default() -> DeadlineWatchdog {
        DeadlineWatchdog::new()
    }
}

impl Drop for DeadlineWatchdog {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("watchdog poisoned");
            state.shutdown = true;
        }
        self.shared.changed.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Disarms its deadline on drop.
#[derive(Debug)]
pub struct DeadlineGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("watchdog poisoned");
        state.disarmed.insert(self.id);
        // The heap entry is skipped (and the disarmed marker reclaimed) when
        // it reaches the front; no need to wake the worker for that.
    }
}

fn run(shared: Arc<Shared>) {
    let mut state = shared.state.lock().expect("watchdog poisoned");
    loop {
        if state.shutdown {
            return;
        }
        // Pop everything due or disarmed; cancel what's due and still armed.
        let now = Instant::now();
        while let Some(Reverse(front)) = state.heap.peek() {
            if state.disarmed.contains(&front.id) {
                let id = front.id;
                state.heap.pop();
                state.disarmed.remove(&id);
                continue;
            }
            if front.due <= now {
                let Reverse(entry) = state.heap.pop().expect("peeked entry");
                entry.token.cancel(entry.reason);
                continue;
            }
            break;
        }
        let wait = match state.heap.peek() {
            Some(Reverse(front)) => front.due.saturating_duration_since(Instant::now()),
            // Nothing armed: sleep until register()/Drop wakes us.
            None => Duration::from_secs(3600),
        };
        let (next, _timeout) = shared
            .changed
            .wait_timeout(state, wait)
            .expect("watchdog poisoned");
        state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_deadlines_cancel_their_tokens() {
        let watchdog = DeadlineWatchdog::new();
        let token = CancelToken::new();
        let _guard = watchdog.register(&token, Duration::from_millis(10), "deadline of 10ms");
        let start = Instant::now();
        while !token.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watchdog never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(token.reason(), "deadline of 10ms");
    }

    #[test]
    fn disarmed_deadlines_do_not_fire() {
        let watchdog = DeadlineWatchdog::new();
        let token = CancelToken::new();
        let guard = watchdog.register(&token, Duration::from_millis(20), "too late");
        drop(guard);
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn deadlines_fire_in_order_and_independently() {
        let watchdog = DeadlineWatchdog::new();
        let fast = CancelToken::new();
        let slow = CancelToken::new();
        let _fast_guard = watchdog.register(&fast, Duration::from_millis(5), "fast");
        let slow_guard = watchdog.register(&slow, Duration::from_secs(60), "slow");
        let start = Instant::now();
        while !fast.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watchdog never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!slow.is_cancelled());
        drop(slow_guard);
    }
}
