//! Byte spans into query source text.
//!
//! A [`Span`] names the half-open byte range `start..end` of a construct in
//! the surface text it was parsed from. The lexer attaches one to every token,
//! the parser to every AST node, and the type checker and evaluator thread
//! them into their errors, so a failing subexpression is locatable all the way
//! up at the engine's `Session` boundary.
//!
//! Spans are *metadata*, not semantics: structural equality of expressions
//! ([`crate::Expr`]) and of evaluation errors deliberately ignores them, so
//! `pretty ∘ parse` round-trips, differential comparisons across backends,
//! and prepared-plan cache keys are unaffected by where a term happened to
//! sit in its source file.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `start..end` into a source string.
///
/// Invariant (checked by the parser's property suite): `start <= end`, and
/// both offsets lie within the source text the span was produced from. An
/// empty span (`start == end`) marks a *position* rather than an extent —
/// the parser uses one at end-of-input for "unexpected end of input" errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte of the construct.
    pub start: usize,
    /// Byte offset one past the last byte of the construct.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        debug_assert!(start <= end, "span {start}..{end} is inverted");
        Span { start, end }
    }

    /// An empty span marking the position `at` (used for end-of-input).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// The number of bytes the span covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is this a zero-width position marker?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_and_measure() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(7).is_empty());
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}
