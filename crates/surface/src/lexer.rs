//! Tokenizer for the surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword.
    Ident(String),
    /// A natural-number literal.
    Number(u64),
    /// An atom literal `@NUMBER`.
    AtomLit(u64),
    /// `\` introducing a λ.
    Backslash,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Equals,
    /// `<=`
    Leq,
    /// `*`
    Star,
    /// `->`
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::AtomLit(n) => write!(f, "@{n}"),
            Token::Backslash => write!(f, "\\"),
            Token::Dot => write!(f, "."),
            Token::Colon => write!(f, ":"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Equals => write!(f, "="),
            Token::Leq => write!(f, "<="),
            Token::Star => write!(f, "*"),
            Token::Arrow => write!(f, "->"),
        }
    }
}

/// A lexical error with its byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset at which the error occurred.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a surface-syntax string. Comments run from `--` to end of line.
pub fn tokenize(text: &str) -> Result<Vec<Token>, LexError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push(Token::Arrow);
                i += 2;
            }
            '\\' => {
                tokens.push(Token::Backslash);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Leq);
                i += 2;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        position: i,
                        message: "expected digits after '@'".to_string(),
                    });
                }
                let n: u64 = text[start..j].parse().map_err(|_| LexError {
                    position: i,
                    message: "atom literal out of range".to_string(),
                })?;
                tokens.push(Token::AtomLit(n));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: u64 = text[start..j].parse().map_err(|_| LexError {
                    position: start,
                    message: "number literal out of range".to_string(),
                })?;
                tokens.push(Token::Number(n));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '%' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'%')
                {
                    j += 1;
                }
                tokens.push(Token::Ident(text[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_lambda() {
        let toks = tokenize("\\x: {atom}. x union {@3}").unwrap();
        assert_eq!(toks[0], Token::Backslash);
        assert_eq!(toks[1], Token::Ident("x".to_string()));
        assert!(toks.contains(&Token::Ident("union".to_string())));
        assert!(toks.contains(&Token::AtomLit(3)));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = tokenize("x -- this is a comment\n  union y").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Ident("union".into()),
                Token::Ident("y".into())
            ]
        );
    }

    #[test]
    fn arrow_and_leq_are_two_character_tokens() {
        let toks = tokenize("(atom -> bool) <=").unwrap();
        assert!(toks.contains(&Token::Arrow));
        assert!(toks.contains(&Token::Leq));
    }

    #[test]
    fn bad_characters_are_reported() {
        let err = tokenize("x $ y").unwrap_err();
        assert_eq!(err.position, 2);
        let err2 = tokenize("@x").unwrap_err();
        assert!(err2.message.contains("digits"));
    }

    #[test]
    fn numbers_and_atoms_are_distinct() {
        let toks = tokenize("42 @42").unwrap();
        assert_eq!(toks, vec![Token::Number(42), Token::AtomLit(42)]);
    }
}
