//! Smoke tests mirroring the core path of every `examples/*.rs` target, so
//! example rot is caught by `cargo test` instead of only by running the
//! examples by hand. Each test keeps the example's assertions but trims the
//! printing and the larger sweep sizes.

use ncql::circuit::compile::{compile, compile_stats, run_compiled};
use ncql::circuit::dcl::direct_connection_language;
use ncql::circuit::logspace::{LogSpaceMeter, UniformTcFamily};
use ncql::circuit::relquery::{eval_reference, BitRelation, RelQuery};
use ncql::core::derived;
use ncql::core::expr::Expr;
use ncql::core::EvalError;
use ncql::object::{Type, Value};
use ncql::queries::{datagen, graph, parity, powerset, Relation};
use ncql::{Session, SessionBuilder};

/// `examples/quickstart.rs`: transitive closure and parity via dcr through the
/// engine's `Session`, plus the surface-syntax round trip and the plan cache.
#[test]
fn quickstart_core_path() {
    let session = Session::new();
    let edges = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 4), (4, 2), (7, 8)]);
    let r = Expr::constant(edges.to_value());

    let tc_query = session
        .prepare_expr(graph::tc_dcr(r))
        .expect("the query typechecks");
    assert!(tc_query.recursion_depth() >= 1);
    let outcome = session.execute(&tc_query).expect("evaluation succeeds");
    assert_eq!(outcome.value, edges.transitive_closure().to_value());
    assert!(outcome.stats.span <= outcome.stats.work);

    let numbers = Expr::constant(Value::atom_set(0..13));
    let odd = session
        .evaluate(&parity::parity_dcr(numbers))
        .expect("parity evaluates");
    assert_eq!(odd.value, Value::Bool(true));

    let text = "dcr(false, \\y: atom. true, \
                \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
                {@1} union {@2} union {@3} union {@4} union {@5})";
    let prepared = session.prepare(text).expect("the surface query prepares");
    let value = session
        .execute(&prepared)
        .expect("the parsed query evaluates")
        .value;
    assert_eq!(value, Value::Bool(true));
    // The pretty-printed normal form parses back and evaluates identically.
    assert_eq!(
        session
            .run(prepared.normal_form())
            .expect("round trip evaluates")
            .value,
        Value::Bool(true)
    );
    // Re-preparing the original text is a cache hit on the same plan.
    assert!(session.prepare(text).expect("hit").ptr_eq(&prepared));
    assert!(session.cache_metrics().hits >= 1);
}

/// `examples/graph_analytics.rs`: strategy agreement, reachability,
/// connectivity, and the parallel executor.
#[test]
fn graph_analytics_core_path() {
    let session = Session::new();
    for n in [8u64, 16] {
        let rel = datagen::random_graph(n, 2.0 / n as f64, 42);
        let r = Expr::constant(rel.to_value());
        let dcr = session.evaluate(&graph::tc_dcr(r.clone())).expect("tc dcr");
        let elem = session
            .evaluate(&graph::tc_elementwise(r))
            .expect("tc elementwise");
        assert_eq!(
            dcr.value, elem.value,
            "both strategies compute the same closure"
        );
        assert_eq!(dcr.value, rel.transitive_closure().to_value());
        assert!(dcr.stats.span <= elem.stats.span || rel.is_empty());
    }

    let rel = datagen::cycle_graph(12);
    let r = Expr::constant(rel.to_value());
    let reach = session
        .evaluate(&graph::reachable_from(r.clone(), Expr::atom(0)))
        .expect("reachability")
        .value;
    assert_eq!(reach.cardinality(), Some(12));
    let connected = session
        .evaluate(&graph::strongly_connected(r))
        .expect("connectivity")
        .value;
    assert_eq!(connected, Value::Bool(true));
    let path = Expr::constant(datagen::path_graph(12).to_value());
    let connected_path = session
        .evaluate(&graph::strongly_connected(path))
        .expect("connectivity")
        .value;
    assert_eq!(connected_path, Value::Bool(false));

    let n = 12u64;
    let query = graph::tc_dcr(Expr::constant(datagen::path_graph(n).to_value()));
    for threads in [1usize, 4] {
        let parallel_session = SessionBuilder::new()
            .parallelism(Some(threads))
            .parallel_cutoff(256)
            .build();
        let out = parallel_session.evaluate(&query).expect("parallel tc");
        assert_eq!(out.value.cardinality(), Some(((n + 1) * n / 2) as usize));
    }
}

/// `examples/complex_objects.rs`: unnest/nest on a nested store, the powerset
/// blow-up guard, and bounded recursion.
#[test]
fn complex_objects_core_path() {
    let store = datagen::document_store(4, 6, 7);
    let store_ty = Type::set(Type::prod(Type::Base, Type::binary_relation()));
    assert!(store.has_type(&store_ty));
    assert_eq!(store.cardinality(), Some(4));

    let session = Session::new();
    let unnested = session
        .prepare_expr(derived::unnest(
            Type::Base,
            Type::prod(Type::Base, Type::Base),
            Expr::constant(store),
        ))
        .expect("unnest typechecks");
    let flat = session.execute(&unnested).expect("unnest evaluates").value;
    let renested = derived::nest(
        Type::Base,
        Type::prod(Type::Base, Type::Base),
        Expr::constant(flat),
    );
    let grouped = session.evaluate(&renested).expect("nest evaluates").value;
    assert_eq!(grouped.cardinality(), Some(4));

    let limited = SessionBuilder::new().max_set_size(4096).build();
    let input = Expr::constant(Value::atom_set(0..18));
    match limited.evaluate(&powerset::powerset_dcr(input.clone())) {
        Err(EvalError::SetTooLarge {
            limit, attempted, ..
        }) => assert!(attempted > limit),
        other => panic!("expected the powerset blow-up to be caught, got {other:?}"),
    }
    limited
        .evaluate(&powerset::bounded_small_subsets(input))
        .expect("bounded recursion stays within the limit");

    let small = session
        .evaluate(&powerset::powerset_dcr(Expr::constant(Value::atom_set(
            0..6,
        ))))
        .expect("small powerset");
    assert_eq!(small.value.cardinality(), Some(64));
}

/// `examples/query_repl.rs`: the `Session::prepare` → `Session::execute`
/// pipeline the runner drives, on its documented sample queries.
#[test]
fn query_repl_core_path() {
    let session = Session::new();
    let arith = session
        .prepare("nat_add(20, 22)")
        .expect("arithmetic prepares");
    assert_eq!(arith.ty().to_string(), "nat");
    assert_eq!(
        session.execute(&arith).expect("evaluates").value,
        Value::Nat(42)
    );

    let sets = session
        .prepare("{@1} union {@2} union {@1}")
        .expect("set query prepares");
    assert_eq!(sets.recursion_depth(), 0);
    let value = session.execute(&sets).expect("set query evaluates").value;
    assert_eq!(value.cardinality(), Some(2));

    let tc = "dcr(empty[(atom * atom)], \\y: atom. {(@1,@2)} union {(@2,@3)}, \
              \\p: ({(atom*atom)} * {(atom*atom)}). pi1 p union pi2 p, {@1} union {@2})";
    let seq_out = session.run(tc).expect("dcr query runs");
    assert_eq!(seq_out.value.cardinality(), Some(2));

    // The `--parallel N` path of the runner: same query, a parallel session,
    // identical value and cost statistics.
    let parallel = SessionBuilder::new()
        .parallelism(Some(4))
        .parallel_cutoff(1)
        .build();
    let par_out = parallel.run(tc).expect("parallel REPL path evaluates");
    assert_eq!(par_out.value, seq_out.value);
    assert_eq!(par_out.stats, seq_out.stats);
}

/// `examples/circuit_compilation.rs`: ACᵏ compilation stats, compiled-vs-
/// reference agreement, and the log-space uniformity meter.
#[test]
fn circuit_compilation_core_path() {
    for k in [1usize, 2] {
        for n in [4usize, 8] {
            let stats = compile_stats(&RelQuery::nested_depth_k(k), n);
            assert!(stats.depth > 0 && stats.size > 0);
        }
    }

    let n = 10;
    let q = RelQuery::transitive_closure(RelQuery::Input(0));
    let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let r = BitRelation::from_pairs(n, &pairs);
    let compiled = run_compiled(&q, n, std::slice::from_ref(&r));
    let reference = eval_reference(&q, &[r], n);
    assert_eq!(compiled, reference);
    assert_eq!(compiled.pairs().len(), n * (n - 1) / 2);

    let union = compile(&RelQuery::union(RelQuery::Input(0), RelQuery::Input(1)), 16);
    assert!(union.depth() <= 4, "union is constant depth");

    for n in [3usize, 5, 8] {
        let circuit = UniformTcFamily::generate(n);
        let dcl = direct_connection_language(n, &circuit);
        assert!(!dcl.is_empty());
        // Same O(log gates) budget the crate's own uniformity test uses.
        let budget = 16 * (usize::BITS - UniformTcFamily::total_gates(n).leading_zeros()) as u64;
        for tuple in dcl.iter().take(200) {
            let mut meter = LogSpaceMeter::new();
            assert!(UniformTcFamily::dcl_member(n, tuple, &mut meter));
            assert!(meter.bits_used() <= budget);
        }
    }
}
