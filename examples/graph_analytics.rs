//! Graph analytics with the NC query language: transitive closure, reachability
//! and connectivity over generated graphs, comparing the divide-and-conquer
//! (NC-style) and element-by-element (PTIME-style) evaluation strategies, and
//! running the dcr combining tree on the parallel evaluation backend — all
//! through the engine's `Session` API.
//!
//! Run with: `cargo run --example graph_analytics --release`

use ncql::core::expr::Expr;
use ncql::queries::{datagen, graph};
use ncql::{Session, SessionBuilder};
use std::time::Instant;

fn main() {
    let session = Session::new();

    println!("n     dcr span   elementwise span   dcr work   elementwise work");
    for n in [8u64, 16, 32, 48] {
        let rel = datagen::random_graph(n, 2.0 / n as f64, 42);
        let r = Expr::constant(rel.to_value());
        let dcr = session.evaluate(&graph::tc_dcr(r.clone())).expect("tc dcr");
        let elem = session
            .evaluate(&graph::tc_elementwise(r.clone()))
            .expect("tc elementwise");
        assert_eq!(
            dcr.value, elem.value,
            "both strategies compute the same closure"
        );
        assert_eq!(dcr.value, rel.transitive_closure().to_value());
        println!(
            "{:<5} {:<10} {:<18} {:<10} {:<10}",
            n, dcr.stats.span, elem.stats.span, dcr.stats.work, elem.stats.work
        );
    }

    // Reachability and connectivity queries.
    let rel = datagen::cycle_graph(12);
    let r = Expr::constant(rel.to_value());
    let reach = session
        .evaluate(&graph::reachable_from(r.clone(), Expr::atom(0)))
        .expect("reachability")
        .value;
    println!(
        "\nnodes reachable from 0 on a 12-cycle: {}",
        reach.cardinality().unwrap_or(0)
    );
    let connected = session
        .evaluate(&graph::strongly_connected(r))
        .expect("connectivity")
        .value;
    println!("cycle is strongly connected        : {connected}");
    let path = Expr::constant(datagen::path_graph(12).to_value());
    let connected_path = session
        .evaluate(&graph::strongly_connected(path))
        .expect("connectivity")
        .value;
    println!("path  is strongly connected        : {connected_path}");

    // Wall-clock on the parallel evaluation backend: the dcr combining tree
    // forks across worker threads, the element-by-element fold cannot. Each
    // thread count is one session — the backend is a session-level choice.
    let n = 40u64;
    let query = graph::tc_dcr(Expr::constant(datagen::path_graph(n).to_value()));
    println!("\nthreads   tc_dcr wall-clock (ms)");
    for threads in [1usize, 2, 4, 8] {
        let parallel_session = SessionBuilder::new()
            .parallelism(Some(threads))
            .parallel_cutoff(256)
            .build();
        let start = Instant::now();
        let out = parallel_session.evaluate(&query).expect("parallel tc");
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(out.value.cardinality(), Some(((n + 1) * n / 2) as usize));
        println!("{threads:<9} {elapsed:.1}");
    }
}
