//! Complex object values and the linear order lifted to all types.
//!
//! Values mirror the type grammar of §2: atoms of the ordered base type `D`,
//! booleans, the empty tuple, pairs, and finite sets. Sets are kept in a
//! *canonical* representation — sorted by the lifted linear order with duplicates
//! removed — so that value equality is structural equality and the encoding of §5
//! ("no duplicates are allowed in the encoding of a set") is immediate.
//!
//! The order on the base type is the natural order on `u64` atom identifiers; it
//! is lifted to all types in the standard lexicographic way (booleans: `false <
//! true`; pairs: lexicographic; sets: by the sorted element sequences, shorter
//! prefix first), following the remark in §3 that "the order relation can be
//! lifted to all types".
//!
//! A canonical set has one of two physical representations, chosen by
//! [`VSet`]'s constructors and invisible to every public operation:
//!
//! * **Boxed** — an `Arc`'d sorted `Vec<Value>`. The general case.
//! * **Columnar** — when every element shares one *flat* shape (products of
//!   scalars, see [`crate::flat::FlatShape`]) and the set is large enough,
//!   elements are stored as fixed-width row-major `u64` rows in a single
//!   buffer. Membership, equality, ordering, and the set operations then run
//!   as tight word loops (the row order equals the lifted value order), and
//!   boxed `Value`s are materialized lazily only at API boundaries that hand
//!   out `&Value`.
//!
//! Both representations are `Arc`-backed: cloning a [`VSet`] (and hence a
//! set-shaped [`Value`]) is O(1) and the clone shares the buffer with the
//! original. This is what makes values cheap to hand to the parallel
//! evaluation backend — worker threads receive shared references to the same
//! canonical buffer instead of deep copies — and it is safe because canonical
//! sets are immutable in practice ([`VSet::insert`] copies-on-write when the
//! buffer is shared).

use crate::flat::{self, FlatShape};
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// An atom of the ordered base type `D`. Atoms are abstract; only their identity
/// and relative order are observable by generic queries (see [`crate::morphism`]).
pub type Atom = u64;

/// A complex object value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An element of the ordered base type `D`.
    Atom(Atom),
    /// A boolean.
    Bool(bool),
    /// The empty tuple `()`, the only value of type `unit`.
    Unit,
    /// An external natural number (only used with the Σ extension of Prop 6.3).
    Nat(u64),
    /// A pair `(x, y)`.
    Pair(Box<Value>, Box<Value>),
    /// A finite set, kept sorted and duplicate-free.
    Set(VSet),
}

/// Sets whose canonical element count reaches this threshold (and whose
/// elements share one flat shape of width ≥ 1) are stored columnar; smaller
/// or non-flat sets stay boxed. Small sets gain nothing from the encode step,
/// and width-0 shapes (all-unit products) have a single inhabitant, so their
/// sets are at most singletons and never qualify.
const COLUMNAR_MIN_LEN: usize = 8;

/// The columnar payload: one flat shape, row-major sorted dup-free rows, and
/// a lazily materialized boxed view for `&Value` boundaries.
#[derive(Debug, Clone)]
struct Columnar {
    /// The shared shape of every element.
    shape: FlatShape,
    /// `shape.width()`, cached; always ≥ 1.
    width: usize,
    /// Row-major rows, sorted ascending by row (= value) order, no duplicates.
    words: Vec<u64>,
    /// Lazy boxed view; must be cleared whenever `words` is mutated.
    boxed: OnceLock<Vec<Value>>,
}

impl Columnar {
    fn len(&self) -> usize {
        self.words.len() / self.width
    }

    fn boxed(&self) -> &Vec<Value> {
        self.boxed
            .get_or_init(|| decode_rows(&self.shape, self.width, &self.words))
    }
}

/// Decode a row-major buffer back into boxed values, in order.
fn decode_rows(shape: &FlatShape, width: usize, words: &[u64]) -> Vec<Value> {
    words
        .chunks_exact(width)
        .map(|row| shape.decode(row))
        .collect()
}

/// The physical representation behind a [`VSet`].
#[derive(Debug, Clone)]
enum Repr {
    /// Sorted dup-free boxed elements (the general case).
    Boxed(Arc<Vec<Value>>),
    /// Fixed-width rows of one flat shape (large flat-element sets).
    Columnar(Arc<Columnar>),
}

/// A finite set of values in canonical form: elements are sorted by the lifted
/// linear order and contain no duplicates. Large sets of flat-shaped elements
/// are stored columnar (see the module docs); all operations are
/// representation-independent. The backing buffer is shared (`Arc`), so clones
/// are O(1) and safe to send across threads.
#[derive(Debug, Clone)]
pub struct VSet {
    repr: Repr,
}

impl VSet {
    /// The empty set.
    pub fn empty() -> VSet {
        VSet {
            repr: Repr::Boxed(Arc::new(Vec::new())),
        }
    }

    /// A singleton set `{x}`.
    pub fn singleton(x: Value) -> VSet {
        VSet {
            repr: Repr::Boxed(Arc::new(vec![x])),
        }
    }

    /// Build a set from already-canonical (sorted, dup-free) elements,
    /// promoting to columnar when the policy allows.
    fn from_canonical_vec(elems: Vec<Value>) -> VSet {
        if elems.len() >= COLUMNAR_MIN_LEN {
            if let Some(shape) = FlatShape::of_value(&elems[0]) {
                let width = shape.width();
                if width >= 1 {
                    let mut words = Vec::with_capacity(elems.len() * width);
                    if elems.iter().all(|e| shape.encode_into(e, &mut words)) {
                        crate::obs::note_promotion();
                        return VSet {
                            repr: Repr::Columnar(Arc::new(Columnar {
                                shape,
                                width,
                                words,
                                boxed: OnceLock::from(elems),
                            })),
                        };
                    }
                }
            }
        }
        VSet {
            repr: Repr::Boxed(Arc::new(elems)),
        }
    }

    /// Build a set from already-canonical rows, demoting to boxed below the
    /// columnar threshold so small results don't keep a columnar husk.
    fn from_canonical_rows(shape: FlatShape, width: usize, words: Vec<u64>) -> VSet {
        debug_assert!(width >= 1 && words.len().is_multiple_of(width));
        if words.len() / width >= COLUMNAR_MIN_LEN {
            crate::obs::note_promotion();
            VSet {
                repr: Repr::Columnar(Arc::new(Columnar {
                    shape,
                    width,
                    words,
                    boxed: OnceLock::new(),
                })),
            }
        } else {
            crate::obs::note_demotion();
            VSet {
                repr: Repr::Boxed(Arc::new(decode_rows(&shape, width, &words))),
            }
        }
    }

    /// Build a set from raw (unsorted, possibly duplicated) rows of one flat
    /// shape: the bulk entry point for row producers — the compiled `ext`
    /// row kernels stream their output rows here. The rows are canonicalized
    /// by the vectorized row sort/dedup and the result follows the usual
    /// representation policy (columnar at ≥ 8 elements, decoded to boxed
    /// below), so the set is indistinguishable from one built element-wise.
    ///
    /// # Panics
    ///
    /// Panics when the shape has width 0 (all-unit shapes are never columnar;
    /// produce those element-wise) or when `words.len()` is not a multiple of
    /// the width.
    pub fn from_raw_rows(shape: FlatShape, words: Vec<u64>) -> VSet {
        let width = shape.width();
        assert!(
            width >= 1 && words.len().is_multiple_of(width),
            "from_raw_rows: rows must be non-empty-width and whole"
        );
        VSet::from_canonical_rows(shape, width, flat::row_sort_dedup(words, width))
    }

    /// The columnar payload of this set — its shared element shape, row
    /// width, and the row-major word buffer — or `None` for a boxed set.
    /// This is the zero-copy read side of the row-kernel entry points: the
    /// rows are sorted ascending in the row (= value) order and
    /// duplicate-free.
    pub fn columnar_rows(&self) -> Option<(&FlatShape, usize, &[u64])> {
        match &self.repr {
            Repr::Columnar(c) => Some((&c.shape, c.width, c.words.as_slice())),
            Repr::Boxed(_) => None,
        }
    }

    /// Like the [`FromIterator`] impl, but pinned to the boxed representation
    /// (columnar promotion bypassed). A/B support for the representation
    /// equivalence proptests and bench E15; no evaluation path uses it.
    pub fn from_iter_boxed<I: IntoIterator<Item = Value>>(iter: I) -> VSet {
        let mut elems: Vec<Value> = iter.into_iter().collect();
        elems.sort();
        elems.dedup();
        VSet {
            repr: Repr::Boxed(Arc::new(elems)),
        }
    }

    /// Does this set currently use the columnar representation? The
    /// representation is an implementation detail — every public operation is
    /// representation-independent — but it is observable here for tests,
    /// benches, and documentation: a canonicalizing constructor goes columnar
    /// exactly when all elements share one flat shape of width ≥ 1 and the
    /// canonical set has ≥ 8 elements ([`VSet::insert`] never promotes).
    pub fn is_columnar(&self) -> bool {
        matches!(self.repr, Repr::Columnar(_))
    }

    /// The shared flat shape of the elements, when one exists. Cheap for
    /// columnar sets; for boxed sets this inspects only the first element
    /// (canonical sets are shape-homogeneous whenever any element is flat
    /// only by construction, so callers re-verify via [`VSet::rows_with_shape`]).
    fn element_shape(&self) -> Option<FlatShape> {
        match &self.repr {
            Repr::Columnar(c) => Some(c.shape.clone()),
            Repr::Boxed(elems) => elems.first().and_then(FlatShape::of_value),
        }
    }

    /// This set's rows under `shape`: borrowed from a columnar buffer when the
    /// shapes match, freshly encoded for a boxed set whose elements all fit,
    /// `None` otherwise.
    fn rows_with_shape(&self, shape: &FlatShape, width: usize) -> Option<Cow<'_, [u64]>> {
        match &self.repr {
            Repr::Columnar(c) => (c.shape == *shape).then(|| Cow::Borrowed(c.words.as_slice())),
            Repr::Boxed(elems) => {
                let mut words = Vec::with_capacity(elems.len() * width);
                if elems.iter().all(|e| shape.encode_into(e, &mut words)) {
                    Some(Cow::Owned(words))
                } else {
                    None
                }
            }
        }
    }

    /// Should a binary set operation with `other` try the row kernels, and
    /// under which shape? Yes when either side is already columnar, or when
    /// both are boxed but flat and jointly large enough that the output could
    /// be columnar (so the encode pays for itself).
    fn kernel_shape(&self, other: &VSet) -> Option<(FlatShape, usize)> {
        let shape = match (&self.repr, &other.repr) {
            (Repr::Columnar(c), _) | (_, Repr::Columnar(c)) => c.shape.clone(),
            (Repr::Boxed(a), Repr::Boxed(b)) => {
                if a.len() + b.len() < COLUMNAR_MIN_LEN {
                    return None;
                }
                let first = a.first().or_else(|| b.first())?;
                FlatShape::of_value(first)?
            }
        };
        let width = shape.width();
        (width >= 1).then_some((shape, width))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Boxed(elems) => elems.len(),
            Repr::Columnar(c) => c.len(),
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test: binary search over the canonical representation —
    /// over encoded rows for a columnar set (a value that doesn't encode
    /// under the set's shape cannot be an element), over boxed values
    /// otherwise.
    pub fn contains(&self, x: &Value) -> bool {
        match &self.repr {
            Repr::Boxed(elems) => elems.binary_search(x).is_ok(),
            Repr::Columnar(c) => {
                let mut probe = Vec::with_capacity(c.width);
                c.shape.encode_into(x, &mut probe)
                    && flat::row_search(&c.words, c.width, &probe).is_ok()
            }
        }
    }

    /// Insert one element (the `insert presentation` constructor `x ⊲ s` of §2),
    /// preserving canonical form. Returns `true` if the element was new.
    /// Copies the shared buffer on write if other clones are alive; a unique
    /// owner mutates in place (`Arc::make_mut`). Insertion never changes a
    /// boxed set to columnar; inserting a value that doesn't match a columnar
    /// set's shape demotes the set to boxed.
    pub fn insert(&mut self, x: Value) -> bool {
        enum Plan {
            Duplicate,
            BoxedAt(usize),
            RowAt(usize, Vec<u64>),
            Demote,
        }
        let plan = match &self.repr {
            Repr::Boxed(elems) => match elems.binary_search(&x) {
                Ok(_) => Plan::Duplicate,
                Err(pos) => Plan::BoxedAt(pos),
            },
            Repr::Columnar(c) => {
                let mut probe = Vec::with_capacity(c.width);
                if c.shape.encode_into(&x, &mut probe) {
                    match flat::row_search(&c.words, c.width, &probe) {
                        Ok(_) => Plan::Duplicate,
                        Err(pos) => Plan::RowAt(pos, probe),
                    }
                } else {
                    Plan::Demote
                }
            }
        };
        match plan {
            Plan::Duplicate => false,
            Plan::BoxedAt(pos) => {
                let Repr::Boxed(elems) = &mut self.repr else {
                    unreachable!("plan chosen from boxed repr")
                };
                Arc::make_mut(elems).insert(pos, x);
                true
            }
            Plan::RowAt(pos, probe) => {
                let Repr::Columnar(col) = &mut self.repr else {
                    unreachable!("plan chosen from columnar repr")
                };
                let col = Arc::make_mut(col);
                let at = pos * col.width;
                col.words.splice(at..at, probe);
                // The boxed view (if materialized) no longer matches the rows.
                col.boxed.take();
                true
            }
            Plan::Demote => {
                crate::obs::note_demotion();
                let mut elems = std::mem::take(self).into_vec();
                let pos = elems
                    .binary_search(&x)
                    .expect_err("shape-mismatched value cannot already be an element");
                elems.insert(pos, x);
                self.repr = Repr::Boxed(Arc::new(elems));
                true
            }
        }
    }

    /// Set union (the `union presentation` constructor of §2). Columnar-
    /// compatible operands merge as word rows; the general case merges boxed
    /// element views and re-applies the representation policy to the result.
    pub fn union(&self, other: &VSet) -> VSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        if let Some((shape, width)) = self.kernel_shape(other) {
            if let (Some(a), Some(b)) = (
                self.rows_with_shape(&shape, width),
                other.rows_with_shape(&shape, width),
            ) {
                return VSet::from_canonical_rows(shape, width, flat::row_union(&a, &b, width));
            }
        }
        let (xs, ys) = (self.as_slice(), other.as_slice());
        let mut out = Vec::with_capacity(xs.len() + ys.len());
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                Ordering::Less => {
                    out.push(xs[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(ys[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    out.push(xs[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&xs[i..]);
        out.extend_from_slice(&ys[j..]);
        VSet::from_canonical_vec(out)
    }

    /// Canonical union of many sets: the post-`ext` merge. When all parts
    /// share one flat shape their rows are flattened into a single buffer and
    /// canonicalized by a vectorized row sort/dedup; otherwise the parts are
    /// combined by a pairwise merge tree. Produces the same canonical set as
    /// folding [`VSet::union`], in O(total · log) word operations for the
    /// flat case.
    pub fn union_many(mut parts: Vec<VSet>) -> VSet {
        parts.retain(|s| !s.is_empty());
        if parts.len() <= 1 {
            return parts.pop().unwrap_or_else(VSet::empty);
        }
        let total: usize = parts.iter().map(VSet::len).sum();
        if total >= COLUMNAR_MIN_LEN {
            if let Some(shape) = parts[0].element_shape() {
                let width = shape.width();
                if width >= 1 {
                    if let Some(rows) = parts
                        .iter()
                        .map(|p| p.rows_with_shape(&shape, width))
                        .collect::<Option<Vec<_>>>()
                    {
                        let mut words = Vec::with_capacity(total * width);
                        for r in &rows {
                            words.extend_from_slice(r);
                        }
                        return VSet::from_canonical_rows(
                            shape,
                            width,
                            flat::row_sort_dedup(words, width),
                        );
                    }
                }
            }
        }
        while parts.len() > 1 {
            let mut next = Vec::with_capacity(parts.len().div_ceil(2));
            let mut it = parts.into_iter();
            while let Some(a) = it.next() {
                next.push(match it.next() {
                    Some(b) => a.union(&b),
                    None => a,
                });
            }
            parts = next;
        }
        parts.pop().unwrap_or_else(VSet::empty)
    }

    /// Set intersection (used by the bounding step of `bdcr`/`bsri`).
    pub fn intersect(&self, other: &VSet) -> VSet {
        if self.is_empty() || other.is_empty() {
            return VSet::empty();
        }
        if let Some((shape, width)) = self.kernel_shape(other) {
            if let (Some(a), Some(b)) = (
                self.rows_with_shape(&shape, width),
                other.rows_with_shape(&shape, width),
            ) {
                return VSet::from_canonical_rows(shape, width, flat::row_intersect(&a, &b, width));
            }
        }
        let (xs, ys) = (self.as_slice(), other.as_slice());
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    out.push(xs[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        VSet::from_canonical_vec(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &VSet) -> VSet {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        if let Some((shape, width)) = self.kernel_shape(other) {
            if let (Some(a), Some(b)) = (
                self.rows_with_shape(&shape, width),
                other.rows_with_shape(&shape, width),
            ) {
                return VSet::from_canonical_rows(
                    shape,
                    width,
                    flat::row_difference(&a, &b, width),
                );
            }
        }
        let (xs, ys) = (self.as_slice(), other.as_slice());
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < xs.len() {
            if j >= ys.len() {
                out.extend_from_slice(&xs[i..]);
                break;
            }
            match xs[i].cmp(&ys[j]) {
                Ordering::Less => {
                    out.push(xs[i].clone());
                    i += 1;
                }
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        VSet::from_canonical_vec(out)
    }

    /// Is `self` a subset of `other`? Same-shape columnar operands use a
    /// two-pointer row scan; the general case probes via [`VSet::contains`].
    pub fn is_subset_of(&self, other: &VSet) -> bool {
        if let (Repr::Columnar(a), Repr::Columnar(b)) = (&self.repr, &other.repr) {
            if a.shape == b.shape {
                return flat::row_subset(&a.words, &b.words, a.width);
            }
        }
        self.iter().all(|x| other.contains(x))
    }

    /// Iterate over the elements in the canonical (ascending) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.as_slice().iter()
    }

    /// The elements as a slice, in canonical order. For a columnar set this
    /// materializes (once per buffer, lazily) the boxed element view.
    pub fn as_slice(&self) -> &[Value] {
        match &self.repr {
            Repr::Boxed(elems) => elems,
            Repr::Columnar(c) => c.boxed(),
        }
    }

    /// Consume the set and return the elements in canonical order. O(1) when
    /// this is the last clone of a boxed buffer (no per-element clone);
    /// decodes or copies otherwise.
    pub fn into_vec(self) -> Vec<Value> {
        match self.repr {
            Repr::Boxed(elems) => Arc::try_unwrap(elems).unwrap_or_else(|shared| (*shared).clone()),
            Repr::Columnar(col) => match Arc::try_unwrap(col) {
                Ok(col) => {
                    let Columnar {
                        shape,
                        width,
                        words,
                        boxed,
                    } = col;
                    boxed
                        .into_inner()
                        .unwrap_or_else(|| decode_rows(&shape, width, &words))
                }
                Err(shared) => shared.boxed().clone(),
            },
        }
    }

    /// Canonical comparison: lexicographic on the sorted element sequences,
    /// shorter prefix first. Same-shape columnar operands compare their word
    /// buffers directly (row order equals value order and the widths agree,
    /// so the word-lexicographic order coincides with the element order).
    fn cmp_canonical(&self, other: &VSet) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Columnar(a), Repr::Columnar(b)) if a.shape == b.shape => {
                debug_assert_eq!(a.width, b.width);
                a.words.cmp(&b.words)
            }
            _ => self.as_slice().cmp(other.as_slice()),
        }
    }
}

impl Default for VSet {
    fn default() -> VSet {
        VSet::empty()
    }
}

impl PartialEq for VSet {
    /// Representation-independent structural equality. Same-representation
    /// operands compare their buffers directly; a columnar set equals a boxed
    /// one exactly when their element sequences agree. (Two non-empty
    /// columnar sets with different shapes are never equal: equal values have
    /// equal shapes.)
    fn eq(&self, other: &VSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Boxed(a), Repr::Boxed(b)) => a == b,
            (Repr::Columnar(a), Repr::Columnar(b)) => a.shape == b.shape && a.words == b.words,
            _ => self.as_slice() == other.as_slice(),
        }
    }
}

impl Eq for VSet {}

impl Hash for VSet {
    /// Hash of the canonical element sequence, so equal sets hash equally
    /// regardless of representation.
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl IntoIterator for VSet {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a VSet {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<Value> for VSet {
    /// Build a set from an arbitrary iterator of elements: sorts and
    /// deduplicates, then picks the representation. Large flat-shaped inputs
    /// are encoded first so the canonicalizing sort runs over fixed-width
    /// word rows instead of boxed values.
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> VSet {
        let mut elems: Vec<Value> = iter.into_iter().collect();
        if elems.len() >= COLUMNAR_MIN_LEN {
            if let Some(shape) = FlatShape::of_value(&elems[0]) {
                let width = shape.width();
                if width >= 1 {
                    let mut words = Vec::with_capacity(elems.len() * width);
                    if elems.iter().all(|e| shape.encode_into(e, &mut words)) {
                        return VSet::from_canonical_rows(
                            shape,
                            width,
                            flat::row_sort_dedup(words, width),
                        );
                    }
                }
            }
        }
        elems.sort();
        elems.dedup();
        VSet::from_canonical_vec(elems)
    }
}

/// Rank used to order values of *different* shapes. Generic queries only ever
/// compare values of the same type, but a total order on all values keeps the
/// canonical set representation simple and matches the paper's "lift the order to
/// all types" remark.
fn shape_rank(v: &Value) -> u8 {
    match v {
        Value::Unit => 0,
        Value::Bool(_) => 1,
        Value::Atom(_) => 2,
        Value::Nat(_) => 3,
        Value::Pair(_, _) => 4,
        Value::Set(_) => 5,
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Unit, Value::Unit) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Atom(a), Value::Atom(b)) => a.cmp(b),
            (Value::Nat(a), Value::Nat(b)) => a.cmp(b),
            (Value::Pair(a1, a2), Value::Pair(b1, b2)) => a1.cmp(b1).then_with(|| a2.cmp(b2)),
            (Value::Set(a), Value::Set(b)) => a.cmp_canonical(b),
            _ => shape_rank(self).cmp(&shape_rank(other)),
        }
    }
}

impl Value {
    /// The empty set of any element type.
    pub fn empty_set() -> Value {
        Value::Set(VSet::empty())
    }

    /// A singleton set `{x}`.
    pub fn singleton(x: Value) -> Value {
        Value::Set(VSet::singleton(x))
    }

    /// Build a set value from an iterator of elements.
    pub fn set_from<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::Set(VSet::from_iter(iter))
    }

    /// A pair `(x, y)`.
    pub fn pair(x: Value, y: Value) -> Value {
        Value::Pair(Box::new(x), Box::new(y))
    }

    /// Build a binary relation value `{(a, b), ...}` from atom pairs.
    pub fn relation_from_pairs<I: IntoIterator<Item = (Atom, Atom)>>(pairs: I) -> Value {
        Value::set_from(
            pairs
                .into_iter()
                .map(|(a, b)| Value::pair(Value::Atom(a), Value::Atom(b))),
        )
    }

    /// Build a unary relation value `{a, ...}` from atoms.
    pub fn atom_set<I: IntoIterator<Item = Atom>>(atoms: I) -> Value {
        Value::set_from(atoms.into_iter().map(Value::Atom))
    }

    /// If this is a set, borrow it.
    pub fn as_set(&self) -> Option<&VSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// If this is a set, take it.
    pub fn into_set(self) -> Option<VSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// If this is a pair, borrow the components.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// If this is a boolean, return it.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// If this is an atom, return it.
    pub fn as_atom(&self) -> Option<Atom> {
        match self {
            Value::Atom(a) => Some(*a),
            _ => None,
        }
    }

    /// If this is an external natural number, return it.
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Value::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// Does this value inhabit the given complex object type?
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Atom(_), Type::Base) => true,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Unit, Type::Unit) => true,
            (Value::Nat(_), Type::Nat) => true,
            (Value::Pair(a, b), Type::Prod(ta, tb)) => a.has_type(ta) && b.has_type(tb),
            (Value::Set(s), Type::Set(t)) => s.iter().all(|x| x.has_type(t)),
            _ => false,
        }
    }

    /// All atoms occurring in the value, in order of first occurrence of the
    /// canonical traversal. Used for the minimal encoding of §5 (atoms are
    /// renumbered `0 .. m−1`) and for genericity tests.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Value::Atom(a) => out.push(*a),
            Value::Bool(_) | Value::Unit | Value::Nat(_) => {}
            Value::Pair(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Value::Set(s) => {
                for x in s.iter() {
                    x.collect_atoms(out);
                }
            }
        }
    }

    /// Total number of value constructors (a size measure used in cost reporting
    /// and in the polynomial-size assertions of the encoding tests).
    pub fn size(&self) -> usize {
        match self {
            Value::Atom(_) | Value::Bool(_) | Value::Unit | Value::Nat(_) => 1,
            Value::Pair(a, b) => 1 + a.size() + b.size(),
            Value::Set(s) => 1 + s.iter().map(Value::size).sum::<usize>(),
        }
    }

    /// Maximum set-nesting depth of the value.
    pub fn set_height(&self) -> usize {
        match self {
            Value::Atom(_) | Value::Bool(_) | Value::Unit | Value::Nat(_) => 0,
            Value::Pair(a, b) => a.set_height().max(b.set_height()),
            Value::Set(s) => 1 + s.iter().map(Value::set_height).max().unwrap_or(0),
        }
    }

    /// Cardinality if this is a set; `None` otherwise.
    pub fn cardinality(&self) -> Option<usize> {
        self.as_set().map(VSet::len)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Interned atoms print their name; numeric atoms keep the classic
            // `a{n}` form (the tag-bit check keeps the numeric path lock-free).
            Value::Atom(a) => match crate::intern::atom_name(*a) {
                Some(name) => write!(f, "@{name}"),
                None => write!(f, "a{a}"),
            },
            Value::Bool(b) => write!(f, "{b}"),
            Value::Unit => write!(f, "()"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> VSet {
        VSet::from_iter(vec![
            Value::Atom(2),
            Value::Atom(1),
            Value::Atom(3),
            Value::Atom(2),
        ])
    }

    #[test]
    fn sets_are_canonical() {
        let s = abc();
        assert_eq!(s.len(), 3);
        let elems: Vec<_> = s.iter().cloned().collect();
        assert_eq!(elems, vec![Value::Atom(1), Value::Atom(2), Value::Atom(3)]);
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let mut s = VSet::empty();
        assert!(s.insert(Value::Atom(7)));
        assert!(!s.insert(Value::Atom(7)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_is_associative_commutative_idempotent() {
        let a = VSet::from_iter(vec![Value::Atom(1), Value::Atom(2)]);
        let b = VSet::from_iter(vec![Value::Atom(2), Value::Atom(3)]);
        let c = VSet::from_iter(vec![Value::Atom(4)]);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(a.union(&a), a);
        assert_eq!(a.union(&VSet::empty()), a);
    }

    #[test]
    fn intersection_and_difference() {
        let a = VSet::from_iter(vec![Value::Atom(1), Value::Atom(2), Value::Atom(3)]);
        let b = VSet::from_iter(vec![Value::Atom(2), Value::Atom(3), Value::Atom(4)]);
        assert_eq!(
            a.intersect(&b),
            VSet::from_iter(vec![Value::Atom(2), Value::Atom(3)])
        );
        assert_eq!(a.difference(&b), VSet::from_iter(vec![Value::Atom(1)]));
        assert!(a.intersect(&b).is_subset_of(&a));
    }

    #[test]
    fn equality_is_structural_on_canonical_sets() {
        let s1 = Value::set_from(vec![Value::Atom(1), Value::Atom(2)]);
        let s2 = Value::set_from(vec![Value::Atom(2), Value::Atom(1), Value::Atom(1)]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn order_is_lifted_to_pairs_and_sets() {
        let p1 = Value::pair(Value::Atom(1), Value::Atom(9));
        let p2 = Value::pair(Value::Atom(2), Value::Atom(0));
        assert!(p1 < p2);
        let s1 = Value::set_from(vec![Value::Atom(1)]);
        let s2 = Value::set_from(vec![Value::Atom(1), Value::Atom(2)]);
        assert!(s1 < s2);
        let s3 = Value::set_from(vec![Value::Atom(2)]);
        assert!(s2 < s3);
    }

    #[test]
    fn has_type_checks_structure() {
        let rel = Value::relation_from_pairs(vec![(1, 2), (2, 3)]);
        assert!(rel.has_type(&Type::binary_relation()));
        assert!(!rel.has_type(&Type::unary_relation()));
        assert!(Value::Bool(true).has_type(&Type::Bool));
        assert!(!Value::Bool(true).has_type(&Type::Base));
        let nested = Value::set_from(vec![Value::atom_set(vec![1, 2]), Value::atom_set(vec![3])]);
        assert!(nested.has_type(&Type::set(Type::set(Type::Base))));
    }

    #[test]
    fn atoms_are_collected_sorted_and_deduplicated() {
        let v = Value::pair(
            Value::relation_from_pairs(vec![(5, 1), (1, 3)]),
            Value::Atom(3),
        );
        assert_eq!(v.atoms(), vec![1, 3, 5]);
    }

    #[test]
    fn size_and_set_height() {
        let v = Value::set_from(vec![Value::atom_set(vec![1]), Value::atom_set(vec![2, 3])]);
        assert_eq!(v.set_height(), 2);
        assert_eq!(v.size(), 1 + (1 + 1) + (1 + 2));
    }

    #[test]
    fn clones_share_the_buffer_and_insert_copies_on_write() {
        let a = VSet::from_iter((0..100).map(Value::Atom));
        let mut b = a.clone();
        // The clone shares storage with the original...
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
        // ...until a write, which must not disturb the original.
        assert!(b.insert(Value::Atom(1000)));
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 101);
        assert!(!a.contains(&Value::Atom(1000)));
        assert!(b.contains(&Value::Atom(1000)));
    }

    #[test]
    fn values_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Value>();
        assert_send_sync::<VSet>();
    }

    #[test]
    fn display_of_values() {
        let v = Value::pair(Value::Atom(1), Value::set_from(vec![Value::Bool(true)]));
        assert_eq!(v.to_string(), "(a1, {true})");
    }

    #[test]
    fn columnar_promotion_follows_the_policy() {
        // Large flat sets go columnar; small, non-flat, or pinned-boxed ones don't.
        assert!(VSet::from_iter((0..8).map(Value::Atom)).is_columnar());
        assert!(!VSet::from_iter((0..7).map(Value::Atom)).is_columnar());
        assert!(VSet::from_iter(
            (0..8).map(|i| Value::pair(Value::Atom(i), Value::Bool(i % 2 == 0)))
        )
        .is_columnar());
        assert!(!VSet::from_iter((0..20).map(|i| Value::singleton(Value::Atom(i)))).is_columnar());
        assert!(!VSet::from_iter_boxed((0..100).map(Value::Atom)).is_columnar());
        // Width-0 shapes (units) have one inhabitant and never reach the threshold.
        assert!(!VSet::from_iter(std::iter::repeat_n(Value::Unit, 20)).is_columnar());
    }

    #[test]
    fn columnar_and_boxed_representations_are_interchangeable() {
        let cols = VSet::from_iter((0..50).map(|i| Value::pair(Value::Atom(i), Value::Nat(i * i))));
        let boxed =
            VSet::from_iter_boxed((0..50).map(|i| Value::pair(Value::Atom(i), Value::Nat(i * i))));
        assert!(cols.is_columnar() && !boxed.is_columnar());
        assert_eq!(cols, boxed);
        assert_eq!(boxed, cols);
        assert_eq!(
            Value::Set(cols.clone()).cmp(&Value::Set(boxed.clone())),
            Ordering::Equal
        );
        let hash = |s: &VSet| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&cols), hash(&boxed));
        assert_eq!(Value::Set(cols).to_string(), Value::Set(boxed).to_string());
    }

    #[test]
    fn columnar_set_operations_match_the_boxed_merges() {
        let mk = |r: std::ops::Range<u64>, step: u64| -> Vec<Value> {
            r.map(|i| Value::pair(Value::Atom(i * step), Value::Atom(i)))
                .collect()
        };
        let (xs, ys) = (mk(0..40, 3), mk(0..40, 5));
        let (a, b) = (VSet::from_iter(xs.clone()), VSet::from_iter(ys.clone()));
        let (ab, bb) = (VSet::from_iter_boxed(xs), VSet::from_iter_boxed(ys));
        assert!(a.is_columnar() && b.is_columnar());
        assert_eq!(a.union(&b), ab.union(&bb));
        assert_eq!(a.intersect(&b), ab.intersect(&bb));
        assert_eq!(a.difference(&b), ab.difference(&bb));
        assert_eq!(a.is_subset_of(&b), ab.is_subset_of(&bb));
        assert!(a.intersect(&b).is_subset_of(&a));
        // Mixed-representation operands take the encode-one-side kernel path.
        assert_eq!(a.union(&bb), ab.union(&b));
    }

    #[test]
    fn union_many_matches_a_union_fold() {
        let parts: Vec<VSet> = (0..17)
            .map(|k| {
                VSet::from_iter(
                    (0..30).map(|i| Value::pair(Value::Atom((i * 7 + k) % 40), Value::Atom(k))),
                )
            })
            .collect();
        let folded = parts.iter().fold(VSet::empty(), |acc, s| acc.union(s));
        assert_eq!(VSet::union_many(parts.clone()), folded);
        // Non-flat parts exercise the pairwise merge tree.
        let nested: Vec<VSet> = (0..9)
            .map(|k| VSet::from_iter((0..5).map(|i| Value::singleton(Value::Atom(i + k)))))
            .collect();
        let folded_nested = nested.iter().fold(VSet::empty(), |acc, s| acc.union(s));
        assert_eq!(VSet::union_many(nested), folded_nested);
        assert_eq!(VSet::union_many(Vec::new()), VSet::empty());
    }

    #[test]
    fn unique_owner_insert_reuses_the_boxed_buffer() {
        // Dedup leaves spare capacity behind, so a unique owner's insert must
        // shift in place (Arc::make_mut's uniquely-owned branch) instead of
        // cloning or reallocating the buffer.
        let mut s = VSet::from_iter((0..32).flat_map(|i| {
            let v = Value::singleton(Value::Atom(i));
            [v.clone(), v]
        }));
        assert!(!s.is_columnar());
        assert_eq!(s.len(), 32);
        let before = s.as_slice().as_ptr();
        assert!(s.insert(Value::singleton(Value::Atom(99))));
        assert!(std::ptr::eq(before, s.as_slice().as_ptr()));
    }

    #[test]
    fn unique_owner_columnar_insert_splices_in_place() {
        let mut s = VSet::from_iter((0..64).map(|i| Value::Atom(2 * i)));
        assert!(s.is_columnar());
        // The first insert may grow the row buffer; the doubled capacity then
        // guarantees the second unique-owner insert splices in place.
        assert!(s.insert(Value::Atom(1)));
        let before = match &s.repr {
            Repr::Columnar(c) => c.words.as_ptr(),
            Repr::Boxed(_) => unreachable!("insert must not demote on matching shape"),
        };
        // Materialize the boxed view, then check the next insert refreshes it.
        assert_eq!(s.as_slice().len(), 65);
        assert!(s.insert(Value::Atom(3)));
        let after = match &s.repr {
            Repr::Columnar(c) => c.words.as_ptr(),
            Repr::Boxed(_) => unreachable!(),
        };
        assert!(std::ptr::eq(before, after));
        assert_eq!(s.as_slice().len(), 66);
        assert!(s.contains(&Value::Atom(3)));
    }

    #[test]
    fn raw_rows_round_trip_through_the_row_entry_points() {
        let vals: Vec<Value> = (0..20)
            .map(|i| Value::pair(Value::Atom(i % 7), Value::Nat(19 - i)))
            .collect();
        let expected = VSet::from_iter(vals.clone());
        let shape = FlatShape::of_value(&vals[0]).unwrap();
        // Encode in a scrambled order with duplicates: from_raw_rows must
        // canonicalize exactly like the element-wise constructor.
        let mut words = Vec::new();
        for v in vals.iter().rev().chain(vals.iter().take(5)) {
            assert!(shape.encode_into(v, &mut words));
        }
        let built = VSet::from_raw_rows(shape.clone(), words);
        assert_eq!(built, expected);
        let (s, w, rows) = built.columnar_rows().expect("20 flat rows go columnar");
        assert_eq!((s, w), (&shape, 2));
        assert_eq!(rows.len(), 2 * expected.len());
        // Below the threshold the result demotes to boxed, like every other
        // canonicalizing constructor.
        let mut few = Vec::new();
        for v in vals.iter().take(3) {
            assert!(shape.encode_into(v, &mut few));
        }
        let small = VSet::from_raw_rows(shape, few);
        assert!(small.columnar_rows().is_none());
        assert_eq!(small, VSet::from_iter(vals[..3].to_vec()));
    }

    #[test]
    fn shape_mismatched_insert_demotes_to_boxed() {
        let mut s = VSet::from_iter((0..10).map(Value::Atom));
        assert!(s.is_columnar());
        assert!(s.insert(Value::Nat(3)));
        assert!(!s.is_columnar());
        assert_eq!(s.len(), 11);
        assert!(s.contains(&Value::Nat(3)));
        assert!(s.contains(&Value::Atom(3)));
    }
}
