//! Unbounded fan-in boolean circuits (§4).
//!
//! A circuit is a sequence of gates in topological order: every gate's inputs
//! refer to earlier gates, which makes acyclicity true by construction and keeps
//! evaluation a single forward pass. Gates are `INPUT`, constant, `NOT`, and
//! unbounded fan-in `AND`/`OR`, exactly the gate basis of the ACᵏ definition.

use serde::{Deserialize, Serialize};

/// Index of a gate within a circuit.
pub type GateId = usize;

/// The kind of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateKind {
    /// The i-th input bit.
    Input(usize),
    /// A constant bit.
    Const(bool),
    /// Negation (fan-in exactly one).
    Not,
    /// Unbounded fan-in conjunction (empty fan-in = true).
    And,
    /// Unbounded fan-in disjunction (empty fan-in = false).
    Or,
}

/// One gate: its kind and the gates feeding it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The gate kind.
    pub kind: GateKind,
    /// The gates whose outputs feed this gate (empty for inputs and constants).
    pub inputs: Vec<GateId>,
}

/// An unbounded fan-in boolean circuit with designated output gates.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Circuit {
    /// Number of input bits.
    pub num_inputs: usize,
    /// The gates, in topological order.
    pub gates: Vec<Gate>,
    /// The gates whose values form the circuit's output, in order.
    pub outputs: Vec<GateId>,
}

impl Circuit {
    /// The number of gates (the *size* measure of §4).
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// The depth: the longest path from an input/constant to an output, counting
    /// NOT/AND/OR gates (inputs and constants have depth 0).
    pub fn depth(&self) -> usize {
        let mut depths = vec![0usize; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let input_depth = gate.inputs.iter().map(|&j| depths[j]).max().unwrap_or(0);
            depths[i] = match gate.kind {
                GateKind::Input(_) | GateKind::Const(_) => 0,
                GateKind::Not | GateKind::And | GateKind::Or => input_depth + 1,
            };
        }
        self.outputs.iter().map(|&o| depths[o]).max().unwrap_or(0)
    }

    /// Evaluate on an input bit string (must have length `num_inputs`).
    pub fn eval(&self, input: &[bool]) -> Vec<bool> {
        assert_eq!(
            input.len(),
            self.num_inputs,
            "input length must match the circuit's declared number of inputs"
        );
        let mut values = vec![false; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = match gate.kind {
                GateKind::Input(k) => input[k],
                GateKind::Const(b) => b,
                GateKind::Not => !values[gate.inputs[0]],
                GateKind::And => gate.inputs.iter().all(|&j| values[j]),
                GateKind::Or => gate.inputs.iter().any(|&j| values[j]),
            };
        }
        self.outputs.iter().map(|&o| values[o]).collect()
    }

    /// Structural validation: every gate's inputs must point to earlier gates,
    /// input gates must reference declared input positions, NOT gates must have
    /// fan-in one, and outputs must reference existing gates.
    pub fn validate(&self) -> Result<(), String> {
        for (i, gate) in self.gates.iter().enumerate() {
            for &j in &gate.inputs {
                if j >= i {
                    return Err(format!("gate {i} reads from gate {j} which is not earlier"));
                }
            }
            match gate.kind {
                GateKind::Input(k) => {
                    if k >= self.num_inputs {
                        return Err(format!(
                            "gate {i} reads input {k} but only {} inputs exist",
                            self.num_inputs
                        ));
                    }
                    if !gate.inputs.is_empty() {
                        return Err(format!("input gate {i} must have no wire inputs"));
                    }
                }
                GateKind::Const(_) => {
                    if !gate.inputs.is_empty() {
                        return Err(format!("constant gate {i} must have no wire inputs"));
                    }
                }
                GateKind::Not => {
                    if gate.inputs.len() != 1 {
                        return Err(format!("NOT gate {i} must have exactly one input"));
                    }
                }
                GateKind::And | GateKind::Or => {}
            }
        }
        for &o in &self.outputs {
            if o >= self.gates.len() {
                return Err(format!("output references missing gate {o}"));
            }
        }
        Ok(())
    }
}

/// Incremental circuit construction with the usual gadget helpers.
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    num_inputs: usize,
    gates: Vec<Gate>,
}

impl CircuitBuilder {
    /// Start a builder for a circuit with `num_inputs` input bits. The input
    /// gates are created eagerly so that input `i` is always gate `i`.
    pub fn new(num_inputs: usize) -> CircuitBuilder {
        let gates = (0..num_inputs)
            .map(|i| Gate {
                kind: GateKind::Input(i),
                inputs: Vec::new(),
            })
            .collect();
        CircuitBuilder { num_inputs, gates }
    }

    /// The gate id of input bit `i`.
    pub fn input(&self, i: usize) -> GateId {
        assert!(i < self.num_inputs, "input index out of range");
        i
    }

    /// Number of gates so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Is the builder empty (no inputs, no gates)?
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    fn push(&mut self, kind: GateKind, inputs: Vec<GateId>) -> GateId {
        let id = self.gates.len();
        self.gates.push(Gate { kind, inputs });
        id
    }

    /// A constant gate.
    pub fn constant(&mut self, b: bool) -> GateId {
        self.push(GateKind::Const(b), Vec::new())
    }

    /// Negation.
    pub fn not(&mut self, a: GateId) -> GateId {
        self.push(GateKind::Not, vec![a])
    }

    /// Unbounded fan-in AND (empty fan-in yields constant true).
    pub fn and_many(&mut self, inputs: Vec<GateId>) -> GateId {
        self.push(GateKind::And, inputs)
    }

    /// Unbounded fan-in OR (empty fan-in yields constant false).
    pub fn or_many(&mut self, inputs: Vec<GateId>) -> GateId {
        self.push(GateKind::Or, inputs)
    }

    /// Binary AND.
    pub fn and2(&mut self, a: GateId, b: GateId) -> GateId {
        self.and_many(vec![a, b])
    }

    /// Binary OR.
    pub fn or2(&mut self, a: GateId, b: GateId) -> GateId {
        self.or_many(vec![a, b])
    }

    /// Exclusive or of two wires (depth 2).
    pub fn xor2(&mut self, a: GateId, b: GateId) -> GateId {
        let na = self.not(a);
        let nb = self.not(b);
        let a_and_nb = self.and2(a, nb);
        let na_and_b = self.and2(na, b);
        self.or2(a_and_nb, na_and_b)
    }

    /// Equivalence (XNOR) of two wires.
    pub fn xnor2(&mut self, a: GateId, b: GateId) -> GateId {
        let x = self.xor2(a, b);
        self.not(x)
    }

    /// Bitwise equality of two equal-length wire vectors: AND of XNORs (depth 3).
    pub fn eq_bits(&mut self, a: &[GateId], b: &[GateId]) -> GateId {
        assert_eq!(a.len(), b.len(), "eq_bits requires equal lengths");
        let bits: Vec<GateId> = a.iter().zip(b).map(|(&x, &y)| self.xnor2(x, y)).collect();
        self.and_many(bits)
    }

    /// Multiplexer: `if sel then a else b`.
    pub fn mux(&mut self, sel: GateId, a: GateId, b: GateId) -> GateId {
        let nsel = self.not(sel);
        let ta = self.and2(sel, a);
        let tb = self.and2(nsel, b);
        self.or2(ta, tb)
    }

    /// Finish the circuit with the given outputs.
    pub fn finish(self, outputs: Vec<GateId>) -> Circuit {
        let c = Circuit {
            num_inputs: self.num_inputs,
            gates: self.gates,
            outputs,
        };
        debug_assert_eq!(c.validate(), Ok(()));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates_evaluate() {
        let mut b = CircuitBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let and = b.and2(x, y);
        let or = b.or2(x, y);
        let nx = b.not(x);
        let c = b.finish(vec![and, or, nx]);
        assert_eq!(c.eval(&[true, false]), vec![false, true, false]);
        assert_eq!(c.eval(&[true, true]), vec![true, true, false]);
        assert_eq!(c.eval(&[false, false]), vec![false, false, true]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn xor_and_eq_bits() {
        let mut b = CircuitBuilder::new(4);
        let x = b.xor2(0, 1);
        let eq = b.eq_bits(&[0, 1], &[2, 3]);
        let c = b.finish(vec![x, eq]);
        assert_eq!(c.eval(&[true, true, true, true]), vec![false, true]);
        assert_eq!(c.eval(&[true, false, true, false]), vec![true, true]);
        assert_eq!(c.eval(&[true, false, false, true]), vec![true, false]);
    }

    #[test]
    fn mux_selects() {
        let mut b = CircuitBuilder::new(3);
        let m = b.mux(0, 1, 2);
        let c = b.finish(vec![m]);
        assert_eq!(c.eval(&[true, true, false]), vec![true]);
        assert_eq!(c.eval(&[false, true, false]), vec![false]);
    }

    #[test]
    fn depth_and_size_are_reported() {
        let mut b = CircuitBuilder::new(2);
        let x = b.xor2(0, 1);
        let c = b.finish(vec![x]);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.size(), 2 + 5);
        // Inputs alone have depth 0.
        let b2 = CircuitBuilder::new(1);
        let i = b2.input(0);
        let c2 = b2.finish(vec![i]);
        assert_eq!(c2.depth(), 0);
    }

    #[test]
    fn empty_fanin_semantics() {
        let mut b = CircuitBuilder::new(0);
        let t = b.and_many(vec![]);
        let f = b.or_many(vec![]);
        let c = b.finish(vec![t, f]);
        assert_eq!(c.eval(&[]), vec![true, false]);
    }

    #[test]
    fn validation_catches_forward_references() {
        let c = Circuit {
            num_inputs: 1,
            gates: vec![
                Gate {
                    kind: GateKind::Input(0),
                    inputs: vec![],
                },
                Gate {
                    kind: GateKind::And,
                    inputs: vec![2],
                },
                Gate {
                    kind: GateKind::Or,
                    inputs: vec![0],
                },
            ],
            outputs: vec![1],
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_not_fanin() {
        let c = Circuit {
            num_inputs: 1,
            gates: vec![
                Gate {
                    kind: GateKind::Input(0),
                    inputs: vec![],
                },
                Gate {
                    kind: GateKind::Not,
                    inputs: vec![0, 0],
                },
            ],
            outputs: vec![1],
        };
        assert!(c.validate().is_err());
    }
}
