//! Reference evaluator with an instrumented work/span (PRAM) cost model.
//!
//! The evaluator computes the denotational semantics of §2/§3/§7.1 and, along the
//! way, two cost measures per query:
//!
//! * **work** — the total number of elementary operations, a stand-in for the
//!   number of processors × time product of a PRAM execution;
//! * **span** — the length of the critical path under the natural parallel
//!   reading of the constructs: `ext` applies its function to all elements
//!   *independently* and unions the results in a single parallel step (§3), the
//!   combining tree of `dcr` has depth `⌈log₂ m⌉`, whereas `sri`/`esr` and `loop`
//!   are inherently sequential chains.
//!
//! These two numbers are what the experiments report: the paper's Theorem 6.2
//! (dcr keeps queries in NC) shows up as polylogarithmic span growth, and
//! Proposition 6.6 (sri captures PTIME) as linear span growth.

use crate::error::EvalError;
use crate::expr::{Expr, ExprKind};
use crate::externs::ExternRegistry;
use crate::EvalResult;
use ncql_object::{FlatShape, VSet, Value};
use ncql_pram::{RegionPermit, TaskError, WorkStealingPool};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

/// Resource limits and options for an evaluation.
#[derive(Clone)]
pub struct EvalConfig {
    /// Maximum allowed cardinality of any intermediate set. Exceeding it aborts
    /// evaluation with [`EvalError::SetTooLarge`]; this is how the exponential
    /// blow-up of unbounded `dcr` over complex objects (e.g. `powerset`) is
    /// surfaced in experiment E8 without hanging the process.
    pub max_set_size: usize,
    /// Maximum total work before aborting with [`EvalError::WorkLimitExceeded`].
    pub max_work: u64,
    /// If set, `dcr`/`sru` combiners are spot-checked for associativity,
    /// commutativity and identity on the values actually encountered, and a
    /// violation aborts evaluation. The full check lives in [`crate::wellformed`].
    pub check_algebraic_laws: bool,
    /// The external function registry Σ.
    pub registry: ExternRegistry,
    /// Number of worker threads for the parallel backend. `None` (the default)
    /// and `Some(0 | 1)` evaluate strictly sequentially; `Some(n)` with `n ≥ 2`
    /// forks the `ext` element map and the `dcr`/`sru`/`bdcr` leaf map and
    /// combining-tree rounds onto `ncql-pram`'s persistent work-stealing pool.
    /// Each forked region borrows at most `n` permits from the pool's thread
    /// budget, which sets the region's chunk granularity and how much budget
    /// concurrent (nested) regions can hold. The hard bound on worker
    /// *threads* is the pool size (`pool_threads`, default `n`): with an
    /// oversubscribed pool, idle workers beyond `n` still steal queued
    /// chunks — that is the point of oversubscription. The cost model (work,
    /// span, counters) is identical under both backends.
    pub parallelism: Option<usize>,
    /// Cost-model-driven cutover for the parallel backend: a region (leaf map,
    /// `ext` map, or one combining round) is only forked when its *estimated*
    /// work — number of independent applications × the applied closure's body
    /// size — reaches this threshold. Small sets therefore never pay region
    /// dispatch costs. Ignored when `parallelism` is `None`.
    pub parallel_cutoff: u64,
    /// Worker-thread count of the persistent work-stealing pool backing the
    /// parallel backend. `None` (the default) sizes the pool by `parallelism`;
    /// `Some(n)` with `n ≥ 2` overrides it — e.g. an oversubscribed pool
    /// larger than the region fan-out, which the `NCQL_POOL_THREADS`
    /// environment knob (read by the engine's `SessionBuilder::from_env`)
    /// sets in the CI matrix. Degenerate values `Some(0 | 1)` are treated as
    /// `None` — the same normalization as `parallelism`, so the two knobs
    /// always agree: a sequential configuration never spawns a pool.
    pub pool_threads: Option<usize>,
    /// Seed for the pool workers' steal-victim order. Purely a scheduling
    /// knob used by the stress suites to randomize steal order: every seed
    /// must produce bit-identical `(Value, CostStats)`.
    pub pool_steal_seed: u64,
    /// Enable compiled row kernels for `ext` over columnar sets (see
    /// [`crate::kernel`]). On by default; disabling forces every `ext` site
    /// through the interpreted element map. Values and `CostStats` are
    /// bit-identical either way — this is a pure execution-strategy knob
    /// (the engine's `NCQL_KERNELS=0` kill switch).
    pub kernels: bool,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            max_set_size: 1 << 22,
            max_work: u64::MAX,
            check_algebraic_laws: false,
            registry: ExternRegistry::standard(),
            parallelism: None,
            parallel_cutoff: 4096,
            pool_threads: None,
            pool_steal_seed: 0,
            kernels: true,
        }
    }
}

impl EvalConfig {
    /// The worker-thread count the parallel backend's pool runs with:
    /// `pool_threads` when it names a real parallel count (`≥ 2`), otherwise
    /// the `parallelism` knob. `0` when the configuration is sequential —
    /// such a configuration never constructs a pool at all.
    pub fn effective_pool_threads(&self) -> usize {
        let parallelism = match self.parallelism {
            Some(n) if n > 1 => n,
            _ => return 0,
        };
        match self.pool_threads {
            Some(n) if n > 1 => n,
            _ => parallelism,
        }
    }

    /// The configuration of the work-stealing pool a parallel backend built
    /// from this `EvalConfig` runs on — the **single** place the evaluator's
    /// pool parameters are decided, used by both the lazy per-evaluator pool
    /// and the engine `Session`'s shared pool. Only meaningful when
    /// [`EvalConfig::effective_pool_threads`] is nonzero (a sequential
    /// configuration never constructs a pool). The pool's own sequential
    /// cutoff is pinned to 1: the evaluator gates regions by its cost-model
    /// cutover, not by item count.
    pub fn pool_config(&self) -> ncql_pram::PoolConfig {
        ncql_pram::PoolConfig {
            threads: self.effective_pool_threads(),
            steal_seed: self.pool_steal_seed,
            sequential_cutoff: 1,
        }
    }
}

impl std::fmt::Debug for EvalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalConfig")
            .field("max_set_size", &self.max_set_size)
            .field("max_work", &self.max_work)
            .field("check_algebraic_laws", &self.check_algebraic_laws)
            .field("parallelism", &self.parallelism)
            .field("parallel_cutoff", &self.parallel_cutoff)
            .field("pool_threads", &self.pool_threads)
            .field("pool_steal_seed", &self.pool_steal_seed)
            .field("kernels", &self.kernels)
            .finish()
    }
}

/// A shared flag for cooperatively cancelling an in-flight evaluation from
/// another thread.
///
/// Hand a clone of the token to [`Evaluator::attach_cancel`] (or the engine's
/// execute-time options) before starting the evaluation, keep the original,
/// and call [`CancelToken::cancel`] from any thread — a deadline watchdog, a
/// shutdown path, a client disconnect handler. The evaluator polls the flag
/// at every work charge (one relaxed atomic load on the hot path), so the
/// evaluation unwinds with [`EvalError::Cancelled`] within a few elementary
/// operations. Worker evaluators of the parallel backend inherit the parent's
/// token, so one `cancel` stops every thread of the evaluation.
///
/// Tokens are single-shot: once cancelled they stay cancelled, and the first
/// recorded reason wins. Reuse across evaluations is therefore only sound for
/// evaluations that should all die together; per-request hosts create one
/// token per request.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// Raised exactly once; checked with relaxed ordering (the reason is
    /// published through the `OnceLock`'s own synchronization).
    flag: Arc<AtomicBool>,
    /// Why the evaluation was cancelled, set before the flag is raised.
    reason: Arc<OnceLock<String>>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raise the flag with a reason (e.g. `"deadline of 50ms exceeded"`).
    /// The first caller's reason is the one evaluations report; later calls
    /// keep the token cancelled but change nothing.
    pub fn cancel(&self, reason: impl Into<String>) {
        let _ = self.reason.set(reason.into());
        self.flag.store(true, AtomicOrdering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(AtomicOrdering::Relaxed)
    }

    /// The recorded reason, or a generic message if the canceller supplied
    /// none (possible only through a racing `cancel` observed before its
    /// reason write — the acquire load makes that window empty in practice).
    pub fn reason(&self) -> String {
        self.reason
            .get()
            .cloned()
            .unwrap_or_else(|| "cancelled".to_string())
    }
}

/// Cost statistics accumulated over one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostStats {
    /// Total work (elementary operations).
    pub work: u64,
    /// Critical-path length under the parallel reading of the language.
    pub span: u64,
    /// Number of combiner (`u`) applications performed by `dcr`/`sru`/`bdcr`.
    pub combiner_calls: u64,
    /// Number of step (`i`) applications performed by `sri`/`esr`/`bsri`.
    pub step_calls: u64,
    /// Number of `ext` element applications.
    pub ext_calls: u64,
    /// Maximum number of *sequential* rounds executed by any single iterator or
    /// insert-recursion in the expression (the quantity bounded by `log` for
    /// `log-loop` and by `n` for `loop`/`sri`).
    pub sequential_rounds: u64,
    /// Largest intermediate set cardinality observed.
    pub max_set_size: usize,
}

/// Runtime values: complex objects or closures (function values exist only
/// transiently, as arguments of `ext`, recursors and applications).
#[derive(Debug, Clone)]
enum RtVal {
    Obj(Value),
    Clo(Closure),
}

/// Function values. `Arc`-shared body and environment make closures `Send +
/// Sync`, so the parallel backend can hand the *same* closure to every worker
/// thread instead of deep-copying expressions per element (the `Rc` this used
/// to be would have pinned evaluation to one thread).
#[derive(Debug, Clone)]
struct Closure {
    param: String,
    body: Arc<Expr>,
    env: Env,
    /// Lazily-computed per-application cost estimate for the parallel-region
    /// gate: the body's static work bound from `analyze` when finite, else
    /// `1 + body size`. Shared across clones so each distinct lambda is
    /// analysed at most once per evaluation.
    gate: Arc<OnceLock<u64>>,
    /// Lazily-compiled row kernel for `ext` over columnar input of a given
    /// shape (`None` once compilation rejects). Shared across clones so each
    /// distinct lambda compiles at most once per evaluation; keyed by the
    /// input shape it was attempted against, since the same closure can be
    /// applied to sets of different element shapes across `ext` sites.
    kernel: Arc<OnceLock<(FlatShape, Option<Arc<crate::kernel::RowKernel>>)>>,
}

impl Closure {
    /// The gate estimate (see the field docs), computed on first use.
    fn gate_cost(&self) -> u64 {
        *self
            .gate
            .get_or_init(|| crate::analyze::region_gate_cost(&self.body))
    }

    /// The row kernel for `ext` over rows of `shape`, compiling on first use.
    /// Returns `None` when the body is not liftable, when the closure
    /// captures an environment (free variables reject inside `compile`), or
    /// when the cached attempt was made against a different input shape.
    fn row_kernel(
        &self,
        shape: &FlatShape,
        registry: &ExternRegistry,
    ) -> Option<Arc<crate::kernel::RowKernel>> {
        let (cached_shape, kernel) = self.kernel.get_or_init(|| {
            let compiled = crate::kernel::compile(&self.param, &self.body, shape, registry)
                .ok()
                .map(Arc::new);
            (shape.clone(), compiled)
        });
        if cached_shape == shape {
            kernel.clone()
        } else {
            None
        }
    }
}

/// Persistent environment (cheap to clone, shared tails across threads).
#[derive(Debug, Clone, Default)]
struct Env {
    head: Option<Arc<EnvNode>>,
}

#[derive(Debug)]
struct EnvNode {
    name: String,
    val: RtVal,
    next: Option<Arc<EnvNode>>,
}

impl Env {
    fn empty() -> Env {
        Env { head: None }
    }

    fn extend(&self, name: String, val: RtVal) -> Env {
        Env {
            head: Some(Arc::new(EnvNode {
                name,
                val,
                next: self.head.clone(),
            })),
        }
    }

    fn lookup(&self, name: &str) -> Option<RtVal> {
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            if node.name == name {
                return Some(node.val.clone());
            }
            cur = node.next.as_ref();
        }
        None
    }
}

impl RtVal {
    fn into_obj(self, context: &str) -> EvalResult<Value> {
        match self {
            RtVal::Obj(v) => Ok(v),
            RtVal::Clo(_) => Err(EvalError::stuck(format!(
                "{context}: expected a complex object, found a function value"
            ))),
        }
    }

    fn into_clo(self, context: &str) -> EvalResult<Closure> {
        match self {
            RtVal::Clo(c) => Ok(c),
            RtVal::Obj(v) => Err(EvalError::stuck(format!(
                "{context}: expected a function value, found {v}"
            ))),
        }
    }
}

/// The number of bits needed to write the cardinality `m` in binary, i.e.
/// `⌈log₂(m+1)⌉` — the round count of `log-loop` (§7.1).
pub fn log_rounds(m: usize) -> u64 {
    (usize::BITS - m.leading_zeros()) as u64
}

/// Componentwise intersection `v ⊓ b` at a PS-type: sets intersect, pairs meet
/// componentwise (§2, definition of bounded dcr).
pub fn meet(v: &Value, bound: &Value) -> EvalResult<Value> {
    match (v, bound) {
        (Value::Set(a), Value::Set(b)) => Ok(Value::Set(a.intersect(b))),
        (Value::Pair(a1, a2), Value::Pair(b1, b2)) => Ok(Value::pair(meet(a1, b1)?, meet(a2, b2)?)),
        _ => Err(EvalError::stuck(format!(
            "bounding meet applied at a non-PS-type value: {v} ⊓ {bound}"
        ))),
    }
}

/// Collapse a `ncql-pram` task error into an evaluation error: a worker that
/// failed forwards its own error; a worker that *panicked* (e.g. inside a
/// buggy extern) surfaces as [`EvalError::WorkerPanicked`] instead of
/// unwinding through the thread scope and aborting the process.
fn flatten_task_error(e: TaskError<EvalError>) -> EvalError {
    match e {
        TaskError::Failed(err) => err,
        TaskError::Panicked(msg) => EvalError::worker_panicked(msg),
    }
}

/// Like [`flatten_task_error`] for infallible pool tasks (the post-`ext`
/// shard merge): only a panic can surface, the `Failed` arm is uninhabited.
fn flatten_merge_panic(e: TaskError<std::convert::Infallible>) -> EvalError {
    match e {
        TaskError::Failed(never) => match never {},
        TaskError::Panicked(msg) => EvalError::worker_panicked(msg),
    }
}

/// Minimum total elements across the shards of one post-`ext` merge before a
/// parallel combine round is attempted; below this, forking costs more than
/// the sequential flat-row merge it replaces. Purely a scheduling heuristic —
/// every path produces the same canonical set.
const PAR_MERGE_MIN_ROWS: usize = 1024;

/// The instrumented evaluator.
#[derive(Debug)]
pub struct Evaluator {
    config: EvalConfig,
    stats: CostStats,
    /// Work charged by *all* threads of one top-level evaluation, used to
    /// enforce `max_work` globally when the parallel backend is active: each
    /// worker's local tally only sees its own shard, so without a shared
    /// budget a query could exceed the limit by up to a factor of `threads`.
    /// `None` whenever enforcement can be done on the local tally alone
    /// (sequential backend, or no finite limit configured).
    shared_work: Option<Arc<AtomicU64>>,
    /// The persistent work-stealing pool parallel regions fork onto. Created
    /// lazily on the first parallel evaluation (or attached by the owning
    /// `ParallelEvaluator`/`Session`, which share one pool across
    /// executions); `None` on the sequential backend, which therefore never
    /// spawns a worker thread.
    pool: Option<Arc<WorkStealingPool>>,
    /// Cooperative cancellation flag, polled at every work charge. `None`
    /// (the default) costs nothing; workers inherit the parent's token so the
    /// whole evaluation stops together.
    cancel: Option<CancelToken>,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::new(EvalConfig::default())
    }
}

impl Evaluator {
    /// Create an evaluator with the given configuration.
    pub fn new(config: EvalConfig) -> Evaluator {
        Evaluator {
            config,
            stats: CostStats::default(),
            shared_work: None,
            pool: None,
            cancel: None,
        }
    }

    /// Attach a persistent work-stealing pool for parallel regions to fork
    /// onto, replacing the one this evaluator would otherwise create lazily.
    /// The engine's `Session` uses this to share one pool (one worker set)
    /// across every execution it dispatches.
    pub fn attach_pool(&mut self, pool: Arc<WorkStealingPool>) {
        self.pool = Some(pool);
    }

    /// The pool parallel regions fork onto, if one has been created or
    /// attached yet.
    pub fn pool(&self) -> Option<&Arc<WorkStealingPool>> {
        self.pool.as_ref()
    }

    /// Attach a cooperative cancellation token: every work charge of this
    /// evaluator (and of the worker evaluators it forks) polls the token and
    /// aborts with [`EvalError::Cancelled`] once it is raised. Attach a fresh
    /// token per evaluation — tokens are single-shot.
    pub fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// A worker evaluator for one parallel chunk: same limits, registry and
    /// parallelism knobs, fresh statistics (absorbed by the parent after the
    /// join), the parent's shared work budget, and the parent's pool handle —
    /// so a *nested* parallel region inside this worker can borrow whatever
    /// workers the pool's thread-budget semaphore still has idle, instead of
    /// being forced sequential the way the fork/join backend forced it.
    fn worker(&self) -> Evaluator {
        Evaluator {
            config: self.config.clone(),
            stats: CostStats::default(),
            shared_work: self.shared_work.clone(),
            pool: self.pool.clone(),
            cancel: self.cancel.clone(),
        }
    }

    /// Cost statistics of the most recent evaluation.
    pub fn stats(&self) -> CostStats {
        self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Evaluate a closed expression of object type. Resets the statistics.
    pub fn eval_closed(&mut self, expr: &Expr) -> EvalResult<Value> {
        self.eval_with_bindings(expr, &[])
    }

    /// Evaluate an expression whose free variables are bound to the given
    /// complex-object values. Resets the statistics.
    pub fn eval_with_bindings(
        &mut self,
        expr: &Expr,
        bindings: &[(String, Value)],
    ) -> EvalResult<Value> {
        self.stats = CostStats::default();
        // A finite work limit under the parallel backend needs one budget
        // shared by every thread of this evaluation (see `shared_work`).
        self.shared_work = if self.parallel_threads() > 1 && self.config.max_work != u64::MAX {
            Some(Arc::new(AtomicU64::new(0)))
        } else {
            None
        };
        // The parallel backend forks onto a persistent pool: created once per
        // evaluator (first parallel evaluation) unless the owner attached a
        // longer-lived one. Sequential configurations never reach this, so
        // they never spawn (or even construct) a pool.
        if self.pool.is_none() && self.config.effective_pool_threads() > 1 {
            self.pool = Some(Arc::new(WorkStealingPool::with_config(
                self.config.pool_config(),
            )));
        }
        let mut env = Env::empty();
        for (name, value) in bindings {
            env = env.extend(name.clone(), RtVal::Obj(value.clone()));
        }
        let (val, span) = self.eval(expr, &env)?;
        self.stats.span = span;
        val.into_obj("query result")
    }

    // ----- internals -----

    fn add_work(&mut self, amount: u64) -> EvalResult<()> {
        // Cooperative cancellation: the work charge is the one choke point
        // every elementary operation passes through, so polling here bounds
        // the reaction latency by a handful of operations. A relaxed load of
        // an untouched cache line is noise next to the atomic budget add
        // below.
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(EvalError::cancelled(token.reason()));
            }
        }
        self.stats.work = self.stats.work.saturating_add(amount);
        let charged = match &self.shared_work {
            // Global budget: every thread adds its charge here, so the limit
            // fires on the same total work as the sequential backend.
            Some(total) => total
                .fetch_add(amount, AtomicOrdering::Relaxed)
                .saturating_add(amount),
            None => self.stats.work,
        };
        if charged > self.config.max_work {
            return Err(EvalError::work_limit_exceeded(self.config.max_work));
        }
        Ok(())
    }

    /// Fold a joined worker's statistics into this evaluator's tallies. Work
    /// and the per-construct counters are additive; the set-size and round
    /// high-water marks take the maximum. (Span is not a tally — it is
    /// threaded through the `(value, span)` results themselves.)
    fn absorb_stats(&mut self, worker: &CostStats) {
        self.stats.work = self.stats.work.saturating_add(worker.work);
        self.stats.combiner_calls += worker.combiner_calls;
        self.stats.step_calls += worker.step_calls;
        self.stats.ext_calls += worker.ext_calls;
        self.stats.sequential_rounds = self.stats.sequential_rounds.max(worker.sequential_rounds);
        self.stats.max_set_size = self.stats.max_set_size.max(worker.max_set_size);
    }

    /// The number of worker threads the configuration allows (1 = sequential).
    fn parallel_threads(&self) -> usize {
        match self.config.parallelism {
            Some(n) if n > 1 => n,
            _ => 1,
        }
    }

    /// Decide whether a region of `apps` independent applications of the
    /// closure is worth forking: the static work estimate (applications ×
    /// the closure's [`Closure::gate_cost`] — the body's `analyze` bound when
    /// finite, the legacy `1 + body size` heuristic otherwise) must reach
    /// `parallel_cutoff`, and the pool's thread-budget semaphore must still
    /// have a worker to lend (nested regions compete for the same bounded
    /// worker set; a region that gets no permit stays sequential). Returns
    /// the borrowed permit to fork with, or `None` to stay sequential —
    /// which never changes the result or the cost statistics, only the
    /// schedule.
    fn parallel_region(&self, apps: usize, clo: &Closure) -> Option<RegionPermit> {
        let threads = self.parallel_threads();
        if threads <= 1 || apps < 2 {
            return None;
        }
        let estimate = (apps as u64).saturating_mul(clo.gate_cost());
        if estimate < self.config.parallel_cutoff {
            return None;
        }
        // The borrow is capped by the *parallelism* knob, not the pool size:
        // the permit sets this region's chunk granularity and leaves the rest
        // of the budget for concurrent (nested) regions to claim. Execution
        // itself is work-stealing — any idle pool worker may run a queued
        // chunk, so the pool size, not this cap, bounds worker threads.
        self.pool.as_ref()?.try_borrow(apps.min(threads))
    }

    fn note_set(&mut self, s: &VSet) -> EvalResult<()> {
        if s.len() > self.stats.max_set_size {
            self.stats.max_set_size = s.len();
        }
        if s.len() > self.config.max_set_size {
            return Err(EvalError::set_too_large(self.config.max_set_size, s.len()));
        }
        Ok(())
    }

    fn note_rounds(&mut self, rounds: u64) {
        if rounds > self.stats.sequential_rounds {
            self.stats.sequential_rounds = rounds;
        }
    }

    fn apply(&mut self, clo: &Closure, arg: RtVal) -> EvalResult<(RtVal, u64)> {
        self.add_work(1)?;
        let env = clo.env.extend(clo.param.clone(), arg);
        let (v, s) = self.eval(&clo.body, &env)?;
        Ok((v, s + 1))
    }

    fn apply_obj(&mut self, clo: &Closure, arg: Value) -> EvalResult<(Value, u64)> {
        let (v, s) = self.apply(clo, RtVal::Obj(arg))?;
        Ok((v.into_obj("function application result")?, s))
    }

    /// Apply a binary combiner (a closure expecting a pair).
    fn apply2(&mut self, clo: &Closure, a: Value, b: Value) -> EvalResult<(Value, u64)> {
        self.apply_obj(clo, Value::pair(a, b))
    }

    fn eval_obj(&mut self, expr: &Expr, env: &Env) -> EvalResult<(Value, u64)> {
        let (v, s) = self.eval(expr, env)?;
        Ok((v.into_obj("expected an object value")?, s))
    }

    fn eval_clo(&mut self, expr: &Expr, env: &Env, what: &str) -> EvalResult<(Closure, u64)> {
        let (v, s) = self.eval(expr, env)?;
        Ok((v.into_clo(what)?, s))
    }

    fn eval_set(&mut self, expr: &Expr, env: &Env, what: &str) -> EvalResult<(VSet, u64)> {
        let (v, s) = self.eval_obj(expr, env)?;
        match v {
            Value::Set(set) => Ok((set, s)),
            other => Err(EvalError::stuck(format!(
                "{what}: expected a set, got {other}"
            ))),
        }
    }

    /// Evaluate one node: locate any error that bubbles out still span-less
    /// at this node, so the deepest spanned frame — the failing subexpression
    /// itself — wins. Identical on both backends: worker errors cross the
    /// pool boundary with their spans already attached.
    fn eval(&mut self, expr: &Expr, env: &Env) -> EvalResult<(RtVal, u64)> {
        self.eval_kind(expr, env)
            .map_err(|e| e.with_span_if_missing(expr.span))
    }

    fn eval_kind(&mut self, expr: &Expr, env: &Env) -> EvalResult<(RtVal, u64)> {
        self.add_work(1)?;
        match &expr.kind {
            ExprKind::Var(x) => env
                .lookup(x)
                .map(|v| (v, 0))
                .ok_or_else(|| EvalError::unbound(x.clone())),
            ExprKind::Lam(x, _, body) => Ok((
                RtVal::Clo(Closure {
                    param: x.clone(),
                    body: Arc::new((**body).clone()),
                    env: env.clone(),
                    gate: Arc::new(OnceLock::new()),
                    kernel: Arc::new(OnceLock::new()),
                }),
                0,
            )),
            ExprKind::App(f, a) => {
                let (fv, sf) = self.eval(f, env)?;
                let clo = fv.into_clo("application")?;
                let (av, sa) = self.eval(a, env)?;
                let (rv, sb) = self.apply(&clo, av)?;
                Ok((rv, sf + sa + sb))
            }
            ExprKind::Let(x, bound, body) => {
                let (bv, sb) = self.eval(bound, env)?;
                let env2 = env.extend(x.clone(), bv);
                let (rv, sr) = self.eval(body, &env2)?;
                Ok((rv, sb + sr))
            }
            ExprKind::Unit => Ok((RtVal::Obj(Value::Unit), 0)),
            ExprKind::Pair(a, b) => {
                let (av, sa) = self.eval_obj(a, env)?;
                let (bv, sb) = self.eval_obj(b, env)?;
                Ok((RtVal::Obj(Value::pair(av, bv)), sa.max(sb) + 1))
            }
            ExprKind::Proj1(e) => {
                let (v, s) = self.eval_obj(e, env)?;
                match v {
                    Value::Pair(a, _) => Ok((RtVal::Obj(*a), s + 1)),
                    other => Err(EvalError::stuck(format!("pi1 of non-pair {other}"))),
                }
            }
            ExprKind::Proj2(e) => {
                let (v, s) = self.eval_obj(e, env)?;
                match v {
                    Value::Pair(_, b) => Ok((RtVal::Obj(*b), s + 1)),
                    other => Err(EvalError::stuck(format!("pi2 of non-pair {other}"))),
                }
            }
            ExprKind::Bool(b) => Ok((RtVal::Obj(Value::Bool(*b)), 0)),
            ExprKind::If(c, t, e) => {
                let (cv, sc) = self.eval_obj(c, env)?;
                match cv {
                    Value::Bool(true) => {
                        let (tv, st) = self.eval(t, env)?;
                        Ok((tv, sc + st + 1))
                    }
                    Value::Bool(false) => {
                        let (ev, se) = self.eval(e, env)?;
                        Ok((ev, sc + se + 1))
                    }
                    other => Err(EvalError::stuck(format!(
                        "if condition not a boolean: {other}"
                    ))),
                }
            }
            ExprKind::Eq(a, b) => {
                let (av, sa) = self.eval_obj(a, env)?;
                let (bv, sb) = self.eval_obj(b, env)?;
                self.add_work(av.size().min(bv.size()) as u64)?;
                Ok((RtVal::Obj(Value::Bool(av == bv)), sa.max(sb) + 1))
            }
            ExprKind::Leq(a, b) => {
                let (av, sa) = self.eval_obj(a, env)?;
                let (bv, sb) = self.eval_obj(b, env)?;
                self.add_work(av.size().min(bv.size()) as u64)?;
                Ok((RtVal::Obj(Value::Bool(av <= bv)), sa.max(sb) + 1))
            }
            ExprKind::Const(v) => Ok((RtVal::Obj(v.clone()), 0)),
            ExprKind::Empty(_) => Ok((RtVal::Obj(Value::empty_set()), 0)),
            ExprKind::Singleton(e) => {
                let (v, s) = self.eval_obj(e, env)?;
                Ok((RtVal::Obj(Value::singleton(v)), s + 1))
            }
            ExprKind::Union(a, b) => {
                let (av, sa) = self.eval_set(a, env, "union")?;
                let (bv, sb) = self.eval_set(b, env, "union")?;
                let u = av.union(&bv);
                self.add_work(u.len() as u64)?;
                self.note_set(&u)?;
                Ok((RtVal::Obj(Value::Set(u)), sa.max(sb) + 1))
            }
            ExprKind::IsEmpty(e) => {
                let (v, s) = self.eval_set(e, env, "isempty")?;
                Ok((RtVal::Obj(Value::Bool(v.is_empty())), s + 1))
            }
            ExprKind::Ext(f, e) => {
                let (clo, sf) = self.eval_clo(f, env, "ext function")?;
                let (set, se) = self.eval_set(e, env, "ext argument")?;
                // The permit outlives the leaf map: the same borrowed workers
                // run the parallel shard-merge rounds below.
                let region = self.parallel_region(set.len(), &clo);
                // Kernel fast path: a columnar argument whose function body
                // compiles to a row kernel runs directly over the word rows.
                // Values, work, span and every counter are bit-identical to
                // the interpreted element map below (the kernel replays the
                // interpreter's exact per-element charges), so this is purely
                // an execution strategy — `config.kernels = false` or any
                // unliftable body falls through with no observable change.
                if self.config.kernels {
                    if let Some(shape) = set.columnar_rows().map(|(s, _, _)| s.clone()) {
                        if let Some(kernel) = clo.row_kernel(&shape, &self.config.registry) {
                            let (parts, max_elem_span) =
                                self.ext_rows_kernel(region.as_ref(), &kernel, &set)?;
                            crate::kernel::note_ext_hit(set.len());
                            let result = self.merge_ext_parts(region.as_ref(), parts)?;
                            self.add_work(result.len() as u64)?;
                            self.note_set(&result)?;
                            return Ok((
                                RtVal::Obj(Value::Set(result)),
                                sf + se + max_elem_span + 1,
                            ));
                        }
                    }
                }
                let mapped: Vec<(Value, u64)> = match &region {
                    Some(region) => self.par_leaf_map(region, &clo, set.as_slice(), true, &None)?,
                    None => {
                        let mut out = Vec::with_capacity(set.len());
                        for x in set.iter() {
                            self.stats.ext_calls += 1;
                            out.push(self.apply_obj(&clo, x.clone())?);
                        }
                        out
                    }
                };
                let mut parts: Vec<VSet> = Vec::with_capacity(mapped.len());
                let mut max_elem_span = 0u64;
                for (res, sx) in mapped {
                    max_elem_span = max_elem_span.max(sx);
                    match res {
                        Value::Set(s) => parts.push(s),
                        other => {
                            return Err(EvalError::stuck(format!(
                                "ext function returned a non-set {other}"
                            )))
                        }
                    }
                }
                let result = self.merge_ext_parts(region.as_ref(), parts)?;
                self.add_work(result.len() as u64)?;
                self.note_set(&result)?;
                // All element computations run independently; the final union is
                // one parallel step (§3's argument for keeping `ext` primitive).
                Ok((RtVal::Obj(Value::Set(result)), sf + se + max_elem_span + 1))
            }

            ExprKind::Dcr { e, f, u, arg } => self.eval_union_recursor(env, e, f, u, None, arg),
            ExprKind::Sru { e, f, u, arg } => self.eval_union_recursor(env, e, f, u, None, arg),
            ExprKind::BDcr {
                e,
                f,
                u,
                bound,
                arg,
            } => self.eval_union_recursor(env, e, f, u, Some(bound), arg),
            ExprKind::Sri { e, i, arg } => self.eval_insert_recursor(env, e, i, None, arg),
            ExprKind::Esr { e, i, arg } => self.eval_insert_recursor(env, e, i, None, arg),
            ExprKind::BSri { e, i, bound, arg } => {
                self.eval_insert_recursor(env, e, i, Some(bound), arg)
            }

            ExprKind::LogLoop { f, set, init } => self.eval_iterator(env, f, None, set, init, true),
            ExprKind::Loop { f, set, init } => self.eval_iterator(env, f, None, set, init, false),
            ExprKind::BLogLoop {
                f,
                bound,
                set,
                init,
            } => self.eval_iterator(env, f, Some(bound), set, init, true),
            ExprKind::BLoop {
                f,
                bound,
                set,
                init,
            } => self.eval_iterator(env, f, Some(bound), set, init, false),

            ExprKind::Extern(name, args) => {
                let ext = self.config.registry.get(name).cloned().ok_or_else(|| {
                    EvalError::extern_failure(format!("unknown external `{name}`"))
                })?;
                let mut vals = Vec::with_capacity(args.len());
                let mut max_span = 0u64;
                for a in args {
                    let (v, s) = self.eval_obj(a, env)?;
                    max_span = max_span.max(s);
                    vals.push(v);
                }
                self.add_work(1)?;
                let result = (ext.body)(&vals)?;
                Ok((RtVal::Obj(result), max_span + 1))
            }
        }
    }

    /// Shared evaluation of `dcr` / `sru` / `bdcr`: apply `f` to all elements in
    /// parallel, then combine with `u` along a balanced binary tree. The span of
    /// the tree is the maximum root-to-leaf sum of combiner spans, i.e. `Θ(log m)`
    /// levels each contributing the span of one combiner application.
    fn eval_union_recursor(
        &mut self,
        env: &Env,
        e: &Expr,
        f: &Expr,
        u: &Expr,
        bound: Option<&Expr>,
        arg: &Expr,
    ) -> EvalResult<(RtVal, u64)> {
        let (mut e_val, se) = self.eval_obj(e, env)?;
        let (f_clo, sf) = self.eval_clo(f, env, "recursor singleton map")?;
        let (u_clo, su) = self.eval_clo(u, env, "recursor combiner")?;
        let (bound_val, sb) = match bound {
            Some(b) => {
                let (bv, s) = self.eval_obj(b, env)?;
                (Some(bv), s)
            }
            None => (None, 0),
        };
        if let Some(b) = &bound_val {
            e_val = meet(&e_val, b)?;
        }
        let (set, sarg) = self.eval_set(arg, env, "recursor argument")?;
        let prefix_span = se.max(sf).max(su).max(sb).max(sarg);

        if set.is_empty() {
            return Ok((RtVal::Obj(e_val), prefix_span + 1));
        }

        // Leaves: f applied to every element, independently (parallel).
        let leaves: Vec<(Value, u64)> = match self.parallel_region(set.len(), &f_clo) {
            Some(region) => {
                self.par_leaf_map(&region, &f_clo, set.as_slice(), false, &bound_val)?
            }
            None => {
                let mut out = Vec::with_capacity(set.len());
                for x in set.iter() {
                    let (mut v, s) = self.apply_obj(&f_clo, x.clone())?;
                    if let Some(b) = &bound_val {
                        v = meet(&v, b)?;
                    }
                    if let Value::Set(s) = &v {
                        self.note_set(s)?;
                    }
                    out.push((v, s));
                }
                out
            }
        };

        if self.config.check_algebraic_laws {
            self.spot_check_laws(&u_clo, &e_val, &leaves, &bound_val)?;
        }

        // Balanced combining tree; each round's pairings are independent, so a
        // round is a parallel region of its own (the top of the tree has too
        // few pairs to clear the cutover and falls back to sequential).
        let mut level = leaves;
        while level.len() > 1 {
            level = match self.parallel_region(level.len() / 2, &u_clo) {
                Some(region) => self.par_combine_round(&region, &u_clo, level, &bound_val)?,
                None => self.seq_combine_round(&u_clo, level, &bound_val)?,
            };
        }
        let (result, tree_span) = level.pop().expect("non-empty set has a combining result");
        Ok((RtVal::Obj(result), prefix_span + tree_span + 1))
    }

    /// One sequential round of pairwise combining: `u(v₀,v₁), u(v₂,v₃), …`,
    /// with an odd tail element passed through unchanged.
    fn seq_combine_round(
        &mut self,
        u_clo: &Closure,
        level: Vec<(Value, u64)>,
        bound_val: &Option<Value>,
    ) -> EvalResult<Vec<(Value, u64)>> {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some((a, sa)) = it.next() {
            match it.next() {
                Some((b, sbn)) => {
                    self.stats.combiner_calls += 1;
                    let (mut c, sc) = self.apply2(u_clo, a, b)?;
                    if let Some(bd) = bound_val {
                        c = meet(&c, bd)?;
                    }
                    if let Value::Set(s) = &c {
                        self.note_set(s)?;
                    }
                    next.push((c, sa.max(sbn) + sc));
                }
                None => next.push((a, sa)),
            }
        }
        Ok(next)
    }

    /// Canonical union of the per-element result sets of one `ext`. With an
    /// active region, the shard list is halved by parallel pairwise-merge
    /// rounds ([`RegionPermit::combine_round`]) while it is wide and heavy
    /// enough to pay for forking; the remaining tail — and the whole merge on
    /// the sequential backend — goes through [`VSet::union_many`], whose
    /// flat-shape fast path canonicalizes fixed-width word rows instead of
    /// boxed values. Every path yields exactly the set the old sequential
    /// `VSet::from_iter` produced (canonical representations are unique), and
    /// like the sort it replaces the merge itself charges no work — the
    /// caller charges the result cardinality once.
    fn merge_ext_parts(
        &mut self,
        region: Option<&RegionPermit>,
        mut parts: Vec<VSet>,
    ) -> EvalResult<VSet> {
        if let Some(region) = region {
            parts.retain(|s| !s.is_empty());
            while parts.len() > 2
                && parts.iter().map(VSet::len).sum::<usize>() >= PAR_MERGE_MIN_ROWS
            {
                // Poll cancellation/limits between log-depth merge levels.
                self.add_work(0)?;
                parts = region
                    .combine_round(parts, |a, b| a.union(b))
                    .map_err(flatten_merge_panic)?;
            }
        }
        Ok(VSet::union_many(parts))
    }

    /// The kernel-path element map of `ext`: run the compiled row kernel over
    /// every columnar row of `set`, charging per row exactly what the
    /// interpreter charges to apply the closure to that element (the kernel
    /// returns the interpreter's `(work, span)`), and canonicalizing the
    /// emitted rows into result parts for [`Self::merge_ext_parts`]. With a
    /// region permit the rows are sharded across the pool — one part and one
    /// reusable scratch state per shard, worker statistics absorbed in shard
    /// order — otherwise a single sequential pass produces one part. Either
    /// way the parts union to the same canonical set the interpreted map
    /// produces, and the statistics are bit-identical across all four
    /// (backend × strategy) combinations.
    fn ext_rows_kernel(
        &mut self,
        region: Option<&RegionPermit>,
        kernel: &crate::kernel::RowKernel,
        set: &VSet,
    ) -> EvalResult<(Vec<VSet>, u64)> {
        let (_, width, words) = set
            .columnar_rows()
            .expect("the kernel path is only taken for columnar sets");
        match region {
            Some(region) => {
                let rows: Vec<&[u64]> = words.chunks_exact(width).collect();
                let parent = self.worker();
                let shards = region
                    .run(&rows, |_, shard| {
                        let mut ev = parent.worker();
                        let mut st = kernel.new_state();
                        let mut out = Vec::with_capacity(shard.len() * kernel.output_width());
                        let mut max_span = 0u64;
                        for row in shard {
                            ev.stats.ext_calls += 1;
                            let (w, s) = kernel.run_row(row, &mut st, &mut out);
                            ev.add_work(w)?;
                            max_span = max_span.max(s);
                        }
                        Ok::<_, EvalError>((kernel.collect_rows(out), max_span, ev.stats))
                    })
                    .map_err(flatten_task_error)?;
                let mut parts = Vec::with_capacity(shards.len());
                let mut max_span = 0u64;
                for (part, span, stats) in shards {
                    self.absorb_stats(&stats);
                    max_span = max_span.max(span);
                    parts.push(part);
                }
                Ok((parts, max_span))
            }
            None => {
                let mut st = kernel.new_state();
                let mut out = Vec::with_capacity(set.len() * kernel.output_width());
                let mut max_span = 0u64;
                for row in words.chunks_exact(width) {
                    self.stats.ext_calls += 1;
                    let (w, s) = kernel.run_row(row, &mut st, &mut out);
                    self.add_work(w)?;
                    max_span = max_span.max(s);
                }
                Ok((vec![kernel.collect_rows(out)], max_span))
            }
        }
    }

    // ----- parallel backend (forking onto the `ncql-pram` pool) -----

    /// Apply `clo` to every element across the pool's worker threads, returning
    /// per-element `(value, span)` in element order. `is_ext` selects the `ext`
    /// accounting (per-element `ext_calls`) versus the recursor-leaf accounting
    /// (bounding meet + set-size notes). Worker statistics are absorbed after
    /// the region completes, so work tallies match the sequential backend
    /// exactly no matter which thread stole which chunk.
    fn par_leaf_map(
        &mut self,
        region: &RegionPermit,
        clo: &Closure,
        elements: &[Value],
        is_ext: bool,
        bound_val: &Option<Value>,
    ) -> EvalResult<Vec<(Value, u64)>> {
        let parent = self.worker();
        let shards = region
            .run(elements, |_, shard| {
                let mut ev = parent.worker();
                let mut out = Vec::with_capacity(shard.len());
                for x in shard {
                    if is_ext {
                        ev.stats.ext_calls += 1;
                    }
                    let (mut v, s) = ev.apply_obj(clo, x.clone())?;
                    if !is_ext {
                        if let Some(b) = bound_val {
                            v = meet(&v, b)?;
                        }
                        if let Value::Set(s) = &v {
                            ev.note_set(s)?;
                        }
                    }
                    out.push((v, s));
                }
                Ok::<_, EvalError>((out, ev.stats))
            })
            .map_err(flatten_task_error)?;
        let mut out = Vec::with_capacity(elements.len());
        for (items, stats) in shards {
            self.absorb_stats(&stats);
            out.extend(items);
        }
        Ok(out)
    }

    /// One parallel round of pairwise combining, sharded across the pool.
    /// Pairings, spans and tallies are identical to [`Self::seq_combine_round`].
    fn par_combine_round(
        &mut self,
        region: &RegionPermit,
        u_clo: &Closure,
        level: Vec<(Value, u64)>,
        bound_val: &Option<Value>,
    ) -> EvalResult<Vec<(Value, u64)>> {
        let pairs: Vec<&[(Value, u64)]> = level.chunks(2).collect();
        let parent = self.worker();
        let shards = region
            .run(&pairs, |_, shard| {
                let mut ev = parent.worker();
                let mut out = Vec::with_capacity(shard.len());
                for chunk in shard {
                    match chunk {
                        [(a, sa), (b, sbn)] => {
                            ev.stats.combiner_calls += 1;
                            let (mut c, sc) = ev.apply2(u_clo, a.clone(), b.clone())?;
                            if let Some(bd) = bound_val {
                                c = meet(&c, bd)?;
                            }
                            if let Value::Set(s) = &c {
                                ev.note_set(s)?;
                            }
                            out.push((c, (*sa).max(*sbn) + sc));
                        }
                        [(a, sa)] => out.push((a.clone(), *sa)),
                        _ => unreachable!("chunks(2) yields chunks of length 1 or 2"),
                    }
                }
                Ok::<_, EvalError>((out, ev.stats))
            })
            .map_err(flatten_task_error)?;
        let mut out = Vec::with_capacity(pairs.len());
        for (items, stats) in shards {
            self.absorb_stats(&stats);
            out.extend(items);
        }
        Ok(out)
    }

    /// Spot-check the algebraic preconditions of `dcr`/`sru` on the values that
    /// actually flow through the recursion (identity, commutativity on the first
    /// few pairs, associativity on the first few triples).
    fn spot_check_laws(
        &mut self,
        u_clo: &Closure,
        e_val: &Value,
        leaves: &[(Value, u64)],
        bound: &Option<Value>,
    ) -> EvalResult<()> {
        let sample: Vec<&Value> = leaves.iter().map(|(v, _)| v).take(4).collect();
        let bounded = |this: &mut Self, v: Value| -> EvalResult<Value> {
            match bound {
                Some(b) => {
                    let m = meet(&v, b)?;
                    let _ = this; // the meet itself is not charged extra work
                    Ok(m)
                }
                None => Ok(v),
            }
        };
        for a in &sample {
            let (ea, _) = self.apply2(u_clo, e_val.clone(), (*a).clone())?;
            let ea = bounded(self, ea)?;
            if &ea != *a {
                return Err(EvalError::ill_formed(format!(
                    "e is not an identity: u(e, {a}) = {ea}"
                )));
            }
        }
        for a in &sample {
            for b in &sample {
                let (ab, _) = self.apply2(u_clo, (*a).clone(), (*b).clone())?;
                let (ba, _) = self.apply2(u_clo, (*b).clone(), (*a).clone())?;
                if bounded(self, ab)? != bounded(self, ba)? {
                    return Err(EvalError::ill_formed(format!(
                        "u is not commutative on {a}, {b}"
                    )));
                }
            }
        }
        if sample.len() >= 3 {
            let (a, b, c) = (sample[0].clone(), sample[1].clone(), sample[2].clone());
            let (ab, _) = self.apply2(u_clo, a.clone(), b.clone())?;
            let ab = bounded(self, ab)?;
            let (ab_c, _) = self.apply2(u_clo, ab, c.clone())?;
            let (bc, _) = self.apply2(u_clo, b, c)?;
            let bc = bounded(self, bc)?;
            let (a_bc, _) = self.apply2(u_clo, a, bc)?;
            if bounded(self, ab_c)? != bounded(self, a_bc)? {
                return Err(EvalError::ill_formed(
                    "u is not associative on sampled values".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Shared evaluation of `sri` / `esr` / `bsri`: a sequential chain of step
    /// applications, one per element. The span is the *sum* of the step spans —
    /// this is the PTIME side of the dichotomy (Proposition 6.6).
    fn eval_insert_recursor(
        &mut self,
        env: &Env,
        e: &Expr,
        i: &Expr,
        bound: Option<&Expr>,
        arg: &Expr,
    ) -> EvalResult<(RtVal, u64)> {
        let (mut acc, se) = self.eval_obj(e, env)?;
        let (i_clo, si) = self.eval_clo(i, env, "insert recursor step")?;
        let (bound_val, sb) = match bound {
            Some(b) => {
                let (bv, s) = self.eval_obj(b, env)?;
                (Some(bv), s)
            }
            None => (None, 0),
        };
        if let Some(b) = &bound_val {
            acc = meet(&acc, b)?;
        }
        let (set, sarg) = self.eval_set(arg, env, "insert recursor argument")?;
        let prefix_span = se.max(si).max(sb).max(sarg);

        let mut chain_span = 0u64;
        let n = set.len() as u64;
        // Elements are inserted from the largest to the smallest, matching the
        // reading sri(e,i)({x1,…,xn}) = i(x1, i(x2, … i(xn, e)…)); i-commutativity
        // makes the order irrelevant for well-formed programs.
        for x in set.into_vec().into_iter().rev() {
            self.stats.step_calls += 1;
            let (mut v, s) = self.apply2(&i_clo, x, acc)?;
            if let Some(b) = &bound_val {
                v = meet(&v, b)?;
            }
            if let Value::Set(s) = &v {
                self.note_set(s)?;
            }
            acc = v;
            chain_span += s;
        }
        self.note_rounds(n);
        Ok((RtVal::Obj(acc), prefix_span + chain_span + 1))
    }

    /// Shared evaluation of the iterators `loop` / `log-loop` / `bloop` /
    /// `blog-loop`: apply the body `|set|` or `⌈log(|set|+1)⌉` times, sequentially.
    fn eval_iterator(
        &mut self,
        env: &Env,
        f: &Expr,
        bound: Option<&Expr>,
        set: &Expr,
        init: &Expr,
        logarithmic: bool,
    ) -> EvalResult<(RtVal, u64)> {
        let (f_clo, sf) = self.eval_clo(f, env, "iterator body")?;
        let (bound_val, sb) = match bound {
            Some(b) => {
                let (bv, s) = self.eval_obj(b, env)?;
                (Some(bv), s)
            }
            None => (None, 0),
        };
        let (counting_set, ss) = self.eval_set(set, env, "iterator counting set")?;
        let (mut acc, si) = self.eval_obj(init, env)?;
        if let Some(b) = &bound_val {
            acc = meet(&acc, b)?;
        }
        let rounds = if logarithmic {
            log_rounds(counting_set.len())
        } else {
            counting_set.len() as u64
        };
        let prefix_span = sf.max(sb).max(ss).max(si);
        let mut chain_span = 0u64;
        for _ in 0..rounds {
            let (mut v, s) = self.apply_obj(&f_clo, acc)?;
            if let Some(b) = &bound_val {
                v = meet(&v, b)?;
            }
            if let Value::Set(s) = &v {
                self.note_set(s)?;
            }
            acc = v;
            chain_span += s;
        }
        self.note_rounds(rounds);
        Ok((RtVal::Obj(acc), prefix_span + chain_span + 1))
    }
}

/// Evaluate a closed expression with the default configuration and return both
/// the value and the cost statistics.
pub fn eval_with_stats(expr: &Expr) -> EvalResult<(Value, CostStats)> {
    let mut ev = Evaluator::default();
    let v = ev.eval_closed(expr)?;
    Ok((v, ev.stats()))
}

/// Evaluate a closed expression with the default configuration.
pub fn eval_closed(expr: &Expr) -> EvalResult<Value> {
    Evaluator::default().eval_closed(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use ncql_object::Type;

    fn atoms(v: Vec<u64>) -> Value {
        Value::atom_set(v)
    }

    fn xor_combiner() -> Expr {
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            Expr::ite(
                Expr::var("a"),
                Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
                Expr::var("b"),
            ),
        )
    }

    fn parity_of(set: Expr) -> Expr {
        Expr::dcr(
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            xor_combiner(),
            set,
        )
    }

    #[test]
    fn basic_constructs() {
        assert_eq!(eval_closed(&Expr::unit()).unwrap(), Value::Unit);
        assert_eq!(
            eval_closed(&Expr::pair(Expr::atom(1), Expr::bool_val(true))).unwrap(),
            Value::pair(Value::Atom(1), Value::Bool(true))
        );
        assert_eq!(
            eval_closed(&Expr::proj1(Expr::pair(Expr::atom(1), Expr::atom(2)))).unwrap(),
            Value::Atom(1)
        );
        assert_eq!(
            eval_closed(&Expr::ite(
                Expr::bool_val(false),
                Expr::atom(1),
                Expr::atom(2)
            ))
            .unwrap(),
            Value::Atom(2)
        );
    }

    #[test]
    fn union_and_singleton_and_empty() {
        let e = Expr::union(
            Expr::singleton(Expr::atom(2)),
            Expr::union(Expr::empty(Type::Base), Expr::singleton(Expr::atom(1))),
        );
        assert_eq!(eval_closed(&e).unwrap(), atoms(vec![1, 2]));
        assert_eq!(
            eval_closed(&Expr::is_empty(Expr::empty(Type::Base))).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn eq_and_leq() {
        let e = Expr::eq(
            Expr::constant(atoms(vec![1, 2])),
            Expr::union(
                Expr::singleton(Expr::atom(2)),
                Expr::singleton(Expr::atom(1)),
            ),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
        let l = Expr::leq(Expr::atom(3), Expr::atom(5));
        assert_eq!(eval_closed(&l).unwrap(), Value::Bool(true));
        let l2 = Expr::leq(Expr::atom(7), Expr::atom(5));
        assert_eq!(eval_closed(&l2).unwrap(), Value::Bool(false));
    }

    #[test]
    fn ext_maps_and_flattens() {
        // ext(λx.{x, x+shadowed}) over {1,2,3} — here: λx.{x} ∪ {1}
        let f = Expr::lam(
            "x",
            Type::Base,
            Expr::union(
                Expr::singleton(Expr::var("x")),
                Expr::singleton(Expr::atom(1)),
            ),
        );
        let e = Expr::ext(f, Expr::constant(atoms(vec![1, 2, 3])));
        assert_eq!(eval_closed(&e).unwrap(), atoms(vec![1, 2, 3]));
    }

    #[test]
    fn ext_span_is_one_parallel_step() {
        // The span of ext over n elements is independent of n (plus the spans of
        // the element computations, which are constant here).
        let f = Expr::lam("x", Type::Base, Expr::singleton(Expr::var("x")));
        let small = Expr::ext(f.clone(), Expr::constant(atoms((0..4).collect())));
        let large = Expr::ext(f, Expr::constant(atoms((0..256).collect())));
        let (_, st_small) = eval_with_stats(&small).unwrap();
        let (_, st_large) = eval_with_stats(&large).unwrap();
        assert_eq!(st_small.span, st_large.span);
        assert!(st_large.work > st_small.work);
    }

    #[test]
    fn dcr_parity_small_cases() {
        assert_eq!(
            eval_closed(&parity_of(Expr::empty(Type::Base))).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_closed(&parity_of(Expr::constant(atoms(vec![5])))).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_closed(&parity_of(Expr::constant(atoms(vec![1, 2])))).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_closed(&parity_of(Expr::constant(atoms((0..7).collect())))).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_closed(&parity_of(Expr::constant(atoms((0..8).collect())))).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn dcr_span_grows_logarithmically() {
        let (_, s16) =
            eval_with_stats(&parity_of(Expr::constant(atoms((0..16).collect())))).unwrap();
        let (_, s256) =
            eval_with_stats(&parity_of(Expr::constant(atoms((0..256).collect())))).unwrap();
        // 16 -> 4 combining levels, 256 -> 8 combining levels: span roughly doubles
        // while work grows 16x.
        assert!(
            s256.span <= s16.span * 3,
            "span {} vs {}",
            s256.span,
            s16.span
        );
        assert!(s256.work >= s16.work * 8);
        assert_eq!(s16.combiner_calls, 15);
        assert_eq!(s256.combiner_calls, 255);
    }

    #[test]
    fn sri_fold_computes_and_is_sequential() {
        // sri(∅, λ(x, acc). {x} ∪ acc) is the identity on sets, with linear span.
        let ty = Type::set(Type::Base);
        let step = Expr::lam2(
            "x",
            "acc",
            Type::prod(Type::Base, ty.clone()),
            Expr::union(Expr::singleton(Expr::var("x")), Expr::var("acc")),
        );
        let make = |n: u64| {
            Expr::sri(
                Expr::empty(Type::Base),
                step.clone(),
                Expr::constant(atoms((0..n).collect())),
            )
        };
        let (v, st16) = eval_with_stats(&make(16)).unwrap();
        assert_eq!(v, atoms((0..16).collect()));
        let (_, st64) = eval_with_stats(&make(64)).unwrap();
        assert!(
            st64.span >= st16.span * 3,
            "span {} vs {}",
            st64.span,
            st16.span
        );
        assert_eq!(st16.step_calls, 16);
        assert_eq!(st64.sequential_rounds, 64);
    }

    #[test]
    fn esr_agrees_with_sri_on_sets() {
        let ty = Type::set(Type::Base);
        let step = Expr::lam2(
            "x",
            "acc",
            Type::prod(Type::Base, ty.clone()),
            Expr::union(Expr::singleton(Expr::var("x")), Expr::var("acc")),
        );
        let arg = Expr::constant(atoms(vec![3, 1, 4, 1, 5]));
        let sri = Expr::sri(Expr::empty(Type::Base), step.clone(), arg.clone());
        let esr = Expr::esr(Expr::empty(Type::Base), step, arg);
        assert_eq!(eval_closed(&sri).unwrap(), eval_closed(&esr).unwrap());
    }

    #[test]
    fn log_loop_round_count_matches_cardinality_bits() {
        // Iterate a counter: f(y) = y ∪ {card-th atom}? Simpler: f adds atom 0.
        // We only check the round count via sequential_rounds.
        let ty = Type::set(Type::Base);
        let f = Expr::lam(
            "r",
            ty.clone(),
            Expr::union(Expr::var("r"), Expr::singleton(Expr::atom(0))),
        );
        for (n, expected_rounds) in [
            (0usize, 0u64),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (255, 8),
            (256, 9),
        ] {
            let e = Expr::log_loop(
                f.clone(),
                Expr::constant(atoms((0..n as u64).collect())),
                Expr::empty(Type::Base),
            );
            let (_, st) = eval_with_stats(&e).unwrap();
            assert_eq!(st.sequential_rounds, expected_rounds, "n = {n}");
        }
    }

    #[test]
    fn loop_iterates_cardinality_times() {
        let ty = Type::set(Type::Base);
        let f = Expr::lam("r", ty.clone(), Expr::var("r"));
        let e = Expr::loop_(
            f,
            Expr::constant(atoms((0..37).collect())),
            Expr::empty(Type::Base),
        );
        let (_, st) = eval_with_stats(&e).unwrap();
        assert_eq!(st.sequential_rounds, 37);
    }

    #[test]
    fn bounded_dcr_intersects_with_bound() {
        // bdcr over {1,2,3} building singletons, bounded by {1,2}: result ⊆ bound.
        let ty = Type::set(Type::Base);
        let f = Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")));
        let u = Expr::lam2(
            "a",
            "b",
            Type::prod(ty.clone(), ty.clone()),
            Expr::union(Expr::var("a"), Expr::var("b")),
        );
        let e = Expr::bdcr(
            Expr::empty(Type::Base),
            f,
            u,
            Expr::constant(atoms(vec![1, 2])),
            Expr::constant(atoms(vec![1, 2, 3])),
        );
        assert_eq!(eval_closed(&e).unwrap(), atoms(vec![1, 2]));
    }

    #[test]
    fn set_size_limit_aborts_blowups() {
        // powerset via dcr: {∅} for empty, {∅,{y}} for singletons, pairwise unions.
        let elem = Type::set(Type::Base);
        let powerset_ty = Type::set(elem.clone());
        let f = Expr::lam(
            "y",
            Type::Base,
            Expr::union(
                Expr::singleton(Expr::empty(Type::Base)),
                Expr::singleton(Expr::singleton(Expr::var("y"))),
            ),
        );
        let pairwise = Expr::lam2(
            "p1",
            "p2",
            Type::prod(powerset_ty.clone(), powerset_ty.clone()),
            Expr::ext(
                Expr::lam(
                    "a",
                    elem.clone(),
                    Expr::ext(
                        Expr::lam(
                            "b",
                            elem.clone(),
                            Expr::singleton(Expr::union(Expr::var("a"), Expr::var("b"))),
                        ),
                        Expr::var("p2"),
                    ),
                ),
                Expr::var("p1"),
            ),
        );
        let e = Expr::dcr(
            Expr::singleton(Expr::empty(Type::Base)),
            f,
            pairwise,
            Expr::constant(atoms((0..20).collect())),
        );
        let mut ev = Evaluator::new(EvalConfig {
            max_set_size: 1024,
            ..EvalConfig::default()
        });
        assert!(matches!(
            ev.eval_closed(&e),
            Err(EvalError::SetTooLarge { .. })
        ));
    }

    #[test]
    fn work_limit_is_enforced() {
        let e = parity_of(Expr::constant(atoms((0..100).collect())));
        let mut ev = Evaluator::new(EvalConfig {
            max_work: 50,
            ..EvalConfig::default()
        });
        assert!(matches!(
            ev.eval_closed(&e),
            Err(EvalError::WorkLimitExceeded { .. })
        ));
    }

    #[test]
    fn algebraic_law_checking_catches_non_commutative_combiner() {
        // u(x, y) = x \ y is not commutative; with law checking the evaluator
        // rejects it (the §2 example of an ill-formed dcr).
        let ty = Type::set(Type::Base);
        let f = Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")));
        // difference via ext: a \ b = ext(λx. if x ∈ b … ) — for the test, use a
        // blatantly non-commutative combiner: u(a,b) = a.
        let u = Expr::lam2("a", "b", Type::prod(ty.clone(), ty.clone()), Expr::var("a"));
        let e = Expr::dcr(
            Expr::empty(Type::Base),
            f,
            u,
            Expr::constant(atoms(vec![1, 2, 3, 4])),
        );
        let mut ev = Evaluator::new(EvalConfig {
            check_algebraic_laws: true,
            ..EvalConfig::default()
        });
        assert!(matches!(
            ev.eval_closed(&e),
            Err(EvalError::IllFormedRecursion { .. })
        ));
    }

    #[test]
    fn eval_with_bindings_resolves_free_variables() {
        let e = Expr::union(Expr::var("r"), Expr::singleton(Expr::atom(9)));
        let mut ev = Evaluator::default();
        let v = ev
            .eval_with_bindings(&e, &[("r".to_string(), atoms(vec![1, 2]))])
            .unwrap();
        assert_eq!(v, atoms(vec![1, 2, 9]));
    }

    #[test]
    fn extern_calls_evaluate() {
        let e = Expr::extern_call(
            "nat_add",
            vec![
                Expr::nat(20),
                Expr::extern_call("nat_mul", vec![Expr::nat(4), Expr::nat(5)]),
            ],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Nat(40));
    }

    #[test]
    fn log_rounds_matches_definition() {
        assert_eq!(log_rounds(0), 0);
        assert_eq!(log_rounds(1), 1);
        assert_eq!(log_rounds(2), 2);
        assert_eq!(log_rounds(3), 2);
        assert_eq!(log_rounds(4), 3);
        assert_eq!(log_rounds(1023), 10);
        assert_eq!(log_rounds(1024), 11);
    }

    #[test]
    fn meet_is_componentwise() {
        let a = Value::pair(atoms(vec![1, 2, 3]), atoms(vec![4, 5]));
        let b = Value::pair(atoms(vec![2, 3]), atoms(vec![5, 6]));
        assert_eq!(
            meet(&a, &b).unwrap(),
            Value::pair(atoms(vec![2, 3]), atoms(vec![5]))
        );
        assert!(meet(&Value::Bool(true), &Value::Bool(true)).is_err());
    }
}
