//! E6 — Theorem 6.2: compile time, size and depth of the ACᵏ circuit families.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_circuit::compile::{compile, run_compiled};
use ncql_circuit::relquery::{BitRelation, RelQuery};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_circuit_depth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for k in [1usize, 2, 3] {
        let q = RelQuery::nested_depth_k(k);
        group.bench_with_input(BenchmarkId::new("compile_n16", k), &k, |b, _| {
            b.iter(|| compile(&q, 16))
        });
    }
    let q = RelQuery::transitive_closure(RelQuery::Input(0));
    for n in [8usize, 16] {
        let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let r = BitRelation::from_pairs(n, &pairs);
        group.bench_with_input(BenchmarkId::new("compile_and_run_tc", n), &n, |b, _| {
            b.iter(|| run_compiled(&q, n, std::slice::from_ref(&r)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
