//! E2 — transitive closure (§1 / Example 7.1): dcr vs log-loop vs element-wise,
//! with the dcr form additionally timed on the parallel backend (threads from
//! `NCQL_TEST_PARALLELISM`, default 4) and through the engine's prepared path
//! (`tc_cold` pays parse + typecheck per execution, `tc_prepared` pays it
//! once).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::{eval_closed, EvalConfig};
use ncql_core::expr::Expr;
use ncql_core::parallelism_from_env;
use ncql_engine::SessionBuilder;
use ncql_queries::{datagen, eval_query_with, graph};
use std::time::Duration;

/// The §1 transitive-closure dcr over an `n`-node path graph, as surface text
/// (the edge relation is spelled out, so front-end cost scales with `n`).
fn tc_text(n: u64) -> String {
    let edges = (0..n.saturating_sub(1))
        .map(|i| format!("{{(@{i}, @{})}}", i + 1))
        .collect::<Vec<_>>()
        .join(" union ");
    let nodes = (0..n)
        .map(|i| format!("{{@{i}}}"))
        .collect::<Vec<_>>()
        .join(" union ");
    format!(
        "let r = {edges} in \
         dcr(empty[(atom * atom)], \\y: atom. r, \
             \\p: ({{(atom * atom)}} * {{(atom * atom)}}). \
               pi1 p union pi2 p union \
               ext(\\e1: (atom * atom). \
                 ext(\\e2: (atom * atom). \
                   if (pi2 e1) = (pi1 e2) then {{(pi1 e1, pi2 e2)}} else empty[(atom * atom)], \
                 pi2 p), \
               pi1 p), \
             {nodes})"
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_transitive_closure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [8u64, 16, 32] {
        let r = Expr::constant(datagen::path_graph(n).to_value());
        group.bench_with_input(BenchmarkId::new("dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_dcr(r.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("log_loop", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_log_loop(r.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("elementwise", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_elementwise(r.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline_seminaive", n), &n, |b, _| {
            let rel = datagen::path_graph(n);
            b.iter(|| rel.transitive_closure_seminaive())
        });
        let threads = parallelism_from_env().unwrap_or(4);
        group.bench_with_input(
            BenchmarkId::new(format!("dcr_par{threads}"), n),
            &n,
            |b, _| {
                let forking = EvalConfig {
                    parallel_cutoff: 256,
                    ..EvalConfig::default()
                };
                b.iter(|| {
                    eval_query_with(&graph::tc_dcr(r.clone()), Some(threads), forking.clone())
                        .unwrap()
                })
            },
        );
        // Persistent-pool variant: one session's worker set serves every
        // iteration (dcr_par builds a fresh session, and so a fresh pool, per
        // call) — the delta between the two columns is the pool set-up cost
        // the work-stealing backend amortizes away.
        let pool_session = SessionBuilder::new()
            .parallelism(Some(threads))
            .parallel_cutoff(256)
            .build();
        group.bench_with_input(
            BenchmarkId::new(format!("dcr_pool{threads}"), n),
            &n,
            |b, _| b.iter(|| pool_session.evaluate(&graph::tc_dcr(r.clone())).unwrap()),
        );

        // Cold vs prepared through the engine.
        let text = tc_text(n);
        let cold_session = SessionBuilder::new().cache_capacity(0).build();
        group.bench_with_input(BenchmarkId::new("tc_cold", n), &n, |b, _| {
            b.iter(|| cold_session.run(&text).unwrap())
        });
        let session = SessionBuilder::new().build();
        let prepared = session.prepare(&text).unwrap();
        group.bench_with_input(BenchmarkId::new("tc_prepared", n), &n, |b, _| {
            b.iter(|| session.execute(&prepared).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
