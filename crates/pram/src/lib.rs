//! PRAM-style parallel execution substrate: a persistent work-stealing pool.
//!
//! The paper's complexity class NC is defined via uniform circuit families and is
//! equivalent to polylogarithmic time on a CRCW PRAM with polynomially many
//! processors (§4, citing Stockmeyer & Vishkin). We obviously cannot reproduce a
//! PRAM on stock hardware; what this crate reproduces is the *shape* of the
//! claim: the divide-and-conquer constructs of the language (`ext` fan-out and
//! the `dcr` combining tree) expose their parallelism to real threads, so the
//! critical path measured by the cost model in `ncql-core` translates into
//! wall-clock speedup, while the element-by-element recursion `sri` has a serial
//! chain that no number of threads can shorten.
//!
//! The NC bound is a *span* claim — `O(polylog)` parallel rounds — so the
//! substrate must not charge a thread start-up latency per round. Earlier
//! revisions forked every parallel region with `std::thread::scope`, paying
//! thread creation per region and never rebalancing uneven shard costs. This
//! crate now provides a [`WorkStealingPool`] instead:
//!
//! * **Persistent workers.** One lazily-spawned worker set per pool, created on
//!   the first [`RegionPermit::run`] and kept until [`WorkStealingPool::shutdown`]
//!   (or drop — shutdown is idempotent). A pool that never executes a region
//!   never spawns a thread (observable via [`live_pool_workers`]).
//! * **A chunk deque per worker.** A region's items are split into more chunks
//!   than workers and distributed round-robin; each worker pops its own deque
//!   LIFO and *steals* FIFO from a pseudo-randomly ordered sequence of victims
//!   when its own deque runs dry, so uneven chunk costs rebalance inside a
//!   region. The victim order is seeded by [`PoolConfig::steal_seed`] — the
//!   scheduling-stress suites vary it to prove results are schedule-invariant.
//! * **Caller participation.** The thread that opens a region executes that
//!   region's queued chunks itself while it waits, so a region always makes
//!   progress even when every worker is busy — which is what makes *nested*
//!   regions (an inner `dcr` inside an outer one's leaf) deadlock-free.
//! * **A thread-budget semaphore.** [`WorkStealingPool::try_borrow`] hands out
//!   at most `threads` worker permits across all concurrently open regions;
//!   an inner region can borrow workers an outer region left idle, and a
//!   caller that gets no permit simply stays sequential.
//!
//! The error and panic discipline is unchanged from the fork/join era and is
//! what `ncql-core` builds its backend equivalence on:
//!
//! * a chunk returning `Err` fails the whole region with [`TaskError::Failed`];
//! * a chunk *panicking* is caught ([`std::panic::catch_unwind`]) — every other
//!   chunk still runs to completion, all partial results are dropped, the
//!   payload message is preserved in [`TaskError::Panicked`], and the pool
//!   survives to serve the next region;
//! * when several chunks fail, the error of the lowest-indexed chunk wins, so
//!   the reported error is deterministic regardless of which thread ran what.
//!
//! This crate is deliberately *language-agnostic*: it knows nothing about
//! expressions or values, which is what lets `ncql-core` depend on it without a
//! cycle.

use std::collections::VecDeque;
use std::convert::Infallible;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread;

/// How many chunks a region creates per borrowed worker. More chunks than
/// workers is what gives stealing something to rebalance when chunk costs are
/// uneven; 4 keeps per-chunk queueing overhead negligible while still letting
/// a fast worker take three extra chunks from a slow one.
const CHUNKS_PER_WORKER: usize = 4;

/// Worker threads alive across *all* pools in the process. Incremented when a
/// pool spawns its worker set, decremented as each worker exits (observed only
/// after the joining `shutdown` returns). The engine's "a sequential session
/// never creates worker threads" regression test is written against this.
static LIVE_POOL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The number of pool worker threads currently alive in this process.
pub fn live_pool_workers() -> usize {
    LIVE_POOL_WORKERS.load(Ordering::SeqCst)
}

/// The number of hardware threads available, with a conservative fallback.
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Why a parallel region failed: a chunk returned an error, or a chunk
/// panicked (the panic is caught, every other chunk still completes, and all
/// partial results are discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError<E> {
    /// A worker closure returned `Err`.
    Failed(E),
    /// A worker closure panicked; the payload message is preserved.
    Panicked(String),
}

impl<E: std::fmt::Display> std::fmt::Display for TaskError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Failed(e) => write!(f, "parallel worker failed: {e}"),
            TaskError::Panicked(msg) => write!(f, "parallel worker panicked: {msg}"),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for TaskError<E> {}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Configuration of a [`WorkStealingPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of persistent worker threads (defaults to the number of
    /// available cores; clamped to at least 1).
    pub threads: usize,
    /// Seed for the workers' victim-selection order when stealing. Purely a
    /// scheduling knob: any seed produces bit-identical region results, which
    /// is exactly what the scheduling-stress test suites prove by sweeping it.
    pub steal_seed: u64,
    /// Regions of at most this many items run inline on the calling thread
    /// (queueing costs more than it saves). The evaluator sets this to 1 and
    /// gates regions by its own cost-model cutover instead.
    pub sequential_cutoff: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            threads: available_threads(),
            steal_seed: 0,
            sequential_cutoff: 8,
        }
    }
}

/// One unit of queued work: a type-erased pointer to a region's state plus the
/// chunk index to execute. The pointer stays valid for as long as tasks of the
/// region can exist — see the safety argument on [`RegionState`].
#[derive(Clone, Copy)]
struct Task {
    region: *const (),
    run: unsafe fn(*const (), usize),
    chunk: usize,
}

// SAFETY: the pointer is only dereferenced inside `run`, and the region-exit
// protocol (see `RegionState`) guarantees the pointee outlives every `run`
// call. The chunk worker closure itself is required to be `Sync` by
// `RegionPermit::run`'s bounds.
unsafe impl Send for Task {}

/// The shared state of one open region, allocated on the opening caller's
/// stack and type-erased into [`Task`]s.
///
/// # Safety protocol (why workers may touch stack data of another thread)
///
/// `RegionPermit::run` does not return until it has observed `done == true`
/// under the `done` mutex. `done` is set (and the condvar notified) by
/// whichever thread decrements `pending` to zero, *after* writing its result —
/// and that mutex release/acquire pair makes every chunk's accesses to the
/// region state happen-before the caller's return. A thread that ran a
/// non-final chunk makes no further access to region memory after its
/// `pending` decrement (its copy of the `Task` is a plain pointer whose drop
/// touches nothing), so no thread can dereference the region pointer once
/// `run` has returned and the stack frame is gone.
/// One chunk's slot: `None` until the chunk ran, then its result.
type ChunkSlot<R, E> = Option<Result<R, TaskError<E>>>;

struct RegionState<'scope, T, R, E, F> {
    items: &'scope [T],
    worker: &'scope F,
    chunk_size: usize,
    /// One slot per chunk, written exactly once by whichever thread runs it.
    results: Mutex<Vec<ChunkSlot<R, E>>>,
    /// Chunks not yet completed. The final decrement flips `done`.
    pending: AtomicUsize,
    done: Mutex<bool>,
    done_signal: Condvar,
}

/// Execute one chunk of the region behind `region` (monomorphized per region
/// type, taken by [`Task::run`] as a plain function pointer).
///
/// # Safety
///
/// `region` must point to a live `RegionState<T, R, E, F>` of exactly these
/// type parameters; the region-exit protocol above guarantees liveness.
unsafe fn run_chunk<T, R, E, F>(region: *const (), chunk: usize)
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &[T]) -> Result<R, E> + Sync,
{
    let state = &*(region as *const RegionState<'_, T, R, E, F>);
    let start = chunk * state.chunk_size;
    let end = (start + state.chunk_size).min(state.items.len());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        (state.worker)(chunk, &state.items[start..end])
    }));
    let result = match outcome {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(e)) => Err(TaskError::Failed(e)),
        Err(payload) => Err(TaskError::Panicked(panic_message(payload))),
    };
    state.results.lock().unwrap()[chunk] = Some(result);
    if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last chunk: flip `done` under the mutex so the caller's wakeup
        // happens-after every chunk's writes (including this thread's).
        let mut done = state.done.lock().unwrap();
        *done = true;
        state.done_signal.notify_all();
    }
}

/// State shared between the pool handle, its permits, and its workers.
struct PoolShared {
    config: PoolConfig,
    /// One deque per worker. Owners pop the back (LIFO), thieves and helping
    /// callers take from the front (FIFO), submission is round-robin.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Wake generation: bumped (under the mutex) whenever tasks are pushed or
    /// shutdown begins, so sleeping workers never miss a wakeup.
    sleep: Mutex<u64>,
    wake_signal: Condvar,
    shutting_down: AtomicBool,
    /// Remaining lendable worker permits (the thread-budget semaphore).
    budget: AtomicUsize,
    /// Round-robin cursor for task distribution across the deques.
    next_queue: AtomicUsize,
    /// Lazily spawns the worker set on the first region.
    spawn: Once,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Workers this pool has spawned (0 until the first region runs).
    spawned_workers: AtomicUsize,
    /// Workers of *this pool* currently alive (spawned and not yet exited).
    /// Unlike the process-global [`LIVE_POOL_WORKERS`], this is safe to
    /// assert on from tests that run concurrently with other pool users.
    live_workers: AtomicUsize,
}

impl PoolShared {
    /// Pop a task: own deque first (LIFO), then steal FIFO from victims in the
    /// pseudo-random order drawn from `rng` — the order the stress suites
    /// randomize via [`PoolConfig::steal_seed`].
    fn find_task(&self, me: usize, rng: &mut u64) -> Option<Task> {
        if let Some(task) = self.queues[me].lock().unwrap().pop_back() {
            return Some(task);
        }
        let n = self.queues.len();
        let start = (xorshift(rng) as usize) % n;
        for offset in 0..n {
            let victim = (start + offset) % n;
            if victim == me {
                continue;
            }
            if let Some(task) = self.queues[victim].lock().unwrap().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// Remove one queued task belonging to `region`, for the opening caller to
    /// execute itself while it waits (callers only help their own region, so a
    /// long-running foreign chunk can never delay a finished region's return).
    fn find_region_task(&self, region: *const ()) -> Option<Task> {
        for queue in &self.queues {
            let mut queue = queue.lock().unwrap();
            if let Some(at) = queue.iter().position(|t| std::ptr::eq(t.region, region)) {
                return queue.remove(at);
            }
        }
        None
    }

    /// Bump the wake generation and rouse every sleeping worker.
    fn wake_all(&self) {
        *self.sleep.lock().unwrap() += 1;
        self.wake_signal.notify_all();
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    // Seed per worker, never zero (xorshift's fixed point).
    let mut rng = shared
        .config
        .steal_seed
        .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        | 1;
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
        if let Some(task) = shared.find_task(index, &mut rng) {
            // SAFETY: the region-exit protocol on `RegionState` keeps the
            // pointee alive until after this call completes.
            unsafe { (task.run)(task.region, task.chunk) };
            continue;
        }
        // Idle transition — the only path that touches the generation lock,
        // so the busy task-draining loop above stays lock-free with respect
        // to it. Rescan while *holding* the lock: a pusher must take it to
        // bump the generation, so it cannot complete a push-and-wake between
        // this scan and the wait below (no lost wakeup). The found task is
        // run after releasing the lock — running it may open a nested
        // region whose wake-up needs the same lock.
        let rescanned = {
            let mut sleep = shared.sleep.lock().unwrap();
            let task = shared.find_task(index, &mut rng);
            if task.is_none() {
                let seen = *sleep;
                while *sleep == seen && !shared.shutting_down.load(Ordering::Acquire) {
                    sleep = shared.wake_signal.wait(sleep).unwrap();
                }
            }
            task
        };
        if let Some(task) = rescanned {
            // SAFETY: as above.
            unsafe { (task.run)(task.region, task.chunk) };
        }
    }
    shared.live_workers.fetch_sub(1, Ordering::SeqCst);
    LIVE_POOL_WORKERS.fetch_sub(1, Ordering::SeqCst);
}

/// A persistent work-stealing thread pool executing parallel *regions*: a
/// region splits a slice into chunks, distributes them across per-worker
/// deques, and blocks the opening caller (who helps) until every chunk ran.
///
/// Workers are spawned lazily on the first region and torn down by
/// [`WorkStealingPool::shutdown`] (idempotent; also run on drop). Opening a
/// region requires borrowing worker permits from the pool's thread-budget
/// semaphore via [`WorkStealingPool::try_borrow`], which is what lets nested
/// regions share one bounded worker set instead of multiplying threads.
///
/// ```
/// use ncql_pram::WorkStealingPool;
///
/// let pool = WorkStealingPool::new(4);
/// let permit = pool.try_borrow(4).expect("budget starts full");
/// let items: Vec<u64> = (0..1000).collect();
/// let squares = permit
///     .run(&items, |_chunk, shard| {
///         Ok::<u64, ()>(shard.iter().map(|x| x * x).sum())
///     })
///     .unwrap();
/// assert_eq!(squares.iter().sum::<u64>(), (0..1000u64).map(|x| x * x).sum());
/// ```
pub struct WorkStealingPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for WorkStealingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingPool")
            .field("threads", &self.shared.config.threads)
            .field("steal_seed", &self.shared.config.steal_seed)
            .field("spawned_workers", &self.spawned_workers())
            .field("available_budget", &self.available_budget())
            .finish()
    }
}

impl WorkStealingPool {
    /// A pool with the given worker-thread count (clamped to at least 1) and
    /// the default steal seed. No thread is spawned until the first region.
    pub fn new(threads: usize) -> WorkStealingPool {
        WorkStealingPool::with_config(PoolConfig {
            threads,
            ..PoolConfig::default()
        })
    }

    /// A pool from a full configuration.
    pub fn with_config(config: PoolConfig) -> WorkStealingPool {
        let threads = config.threads.max(1);
        let config = PoolConfig { threads, ..config };
        WorkStealingPool {
            shared: Arc::new(PoolShared {
                queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
                sleep: Mutex::new(0),
                wake_signal: Condvar::new(),
                shutting_down: AtomicBool::new(false),
                budget: AtomicUsize::new(threads),
                next_queue: AtomicUsize::new(0),
                spawn: Once::new(),
                handles: Mutex::new(Vec::new()),
                spawned_workers: AtomicUsize::new(0),
                live_workers: AtomicUsize::new(0),
                config,
            }),
        }
    }

    /// The configured worker-thread count (the budget semaphore's capacity).
    pub fn threads(&self) -> usize {
        self.shared.config.threads
    }

    /// Worker threads this pool has spawned so far (`0` until the first
    /// region runs — lazy spawning is part of the pool's contract).
    pub fn spawned_workers(&self) -> usize {
        self.shared.spawned_workers.load(Ordering::SeqCst)
    }

    /// Worker threads of this pool currently alive: `spawned_workers` minus
    /// the workers that have exited. `0` after [`WorkStealingPool::shutdown`]
    /// returns (it joins every worker).
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::SeqCst)
    }

    /// Worker permits currently available to borrow.
    pub fn available_budget(&self) -> usize {
        self.shared.budget.load(Ordering::SeqCst)
    }

    /// Borrow up to `desired` worker permits from the thread-budget semaphore
    /// (never blocking): returns `None` when every permit is already lent out
    /// — the caller should then stay sequential — and otherwise a permit for
    /// `min(desired, available)` workers. Permits return to the budget when
    /// the [`RegionPermit`] drops, so an inner region can borrow whatever an
    /// outer region is not using.
    pub fn try_borrow(&self, desired: usize) -> Option<RegionPermit> {
        let desired = desired.max(1);
        let mut current = self.shared.budget.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                return None;
            }
            let take = desired.min(current);
            match self.shared.budget.compare_exchange_weak(
                current,
                current - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(RegionPermit {
                        shared: self.shared.clone(),
                        workers: take,
                    })
                }
                Err(now) => current = now,
            }
        }
    }

    /// Tear the worker set down: signal shutdown, wake every sleeper, and join
    /// all worker threads. Idempotent — later calls (including the one from
    /// `Drop`) find nothing left to join. Chunks already queued are *not*
    /// lost: workers finish the chunk they are running before exiting, and a
    /// region's opening caller drains whatever its workers abandoned, so an
    /// in-flight region still completes (on the caller's thread alone).
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.wake_all();
        let handles = std::mem::take(&mut *self.shared.handles.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A borrow of worker permits from a pool's thread-budget semaphore; the
/// handle through which regions execute ([`RegionPermit::run`]). Dropping the
/// permit returns its workers to the budget.
pub struct RegionPermit {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl std::fmt::Debug for RegionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionPermit")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Drop for RegionPermit {
    fn drop(&mut self) {
        self.shared.budget.fetch_add(self.workers, Ordering::AcqRel);
    }
}

impl RegionPermit {
    /// How many workers this permit borrowed (chunking granularity:
    /// a region creates up to `workers × 4` chunks).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute one parallel region: split `items` into contiguous chunks, run
    /// `worker(chunk_index, chunk)` on each across the pool (the calling
    /// thread participates), and return the per-chunk results in chunk order.
    ///
    /// Single-chunk regions run inline on the calling thread — through the
    /// same panic discipline — so tiny inputs never touch the queues. Errors
    /// and panics follow the crate-level contract: every chunk runs to
    /// completion, partial results are dropped, and the lowest-indexed
    /// chunk's error wins deterministically.
    pub fn run<T, R, E, F>(&self, items: &[T], worker: F) -> Result<Vec<R>, TaskError<E>>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &[T]) -> Result<R, E> + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let target_chunks = items.len().min(self.workers * CHUNKS_PER_WORKER).max(1);
        let chunk_size = items.len().div_ceil(target_chunks);
        let chunks = items.len().div_ceil(chunk_size);
        if chunks == 1 || items.len() <= self.shared.config.sequential_cutoff {
            // Inline fast path, same worker signature and panic discipline, so
            // pool and no-pool execution are indistinguishable to the caller.
            return match catch_unwind(AssertUnwindSafe(|| worker(0, items))) {
                Ok(Ok(r)) => Ok(vec![r]),
                Ok(Err(e)) => Err(TaskError::Failed(e)),
                Err(payload) => Err(TaskError::Panicked(panic_message(payload))),
            };
        }

        self.ensure_spawned();
        let state = RegionState {
            items,
            worker: &worker,
            chunk_size,
            results: Mutex::new((0..chunks).map(|_| None).collect()),
            pending: AtomicUsize::new(chunks),
            done: Mutex::new(false),
            done_signal: Condvar::new(),
        };
        let region = &state as *const RegionState<'_, T, R, E, F> as *const ();
        let run: unsafe fn(*const (), usize) = run_chunk::<T, R, E, F>;

        // Distribute round-robin starting at a rotating cursor so consecutive
        // regions spread over different deques, then wake the workers.
        let n_queues = self.shared.queues.len();
        let base = self.shared.next_queue.fetch_add(chunks, Ordering::Relaxed);
        for chunk in 0..chunks {
            self.shared.queues[(base + chunk) % n_queues]
                .lock()
                .unwrap()
                .push_back(Task { region, run, chunk });
        }
        self.shared.wake_all();

        // Help with our own region's chunks, then wait for the stragglers.
        // The ONLY exit is observing `done` under its mutex — that is what
        // makes handing stack pointers to persistent threads sound (see the
        // RegionState safety protocol).
        loop {
            if let Some(task) = self.shared.find_region_task(region) {
                // SAFETY: `state` is alive; we have not exited the loop.
                unsafe { (task.run)(task.region, task.chunk) };
                if *state.done.lock().unwrap() {
                    break;
                }
            } else {
                let mut done = state.done.lock().unwrap();
                while !*done {
                    done = state.done_signal.wait(done).unwrap();
                }
                break;
            }
        }

        let slots = std::mem::take(&mut *state.results.lock().unwrap());
        let mut out = Vec::with_capacity(chunks);
        for slot in slots {
            match slot.expect("every chunk runs exactly once before done flips") {
                Ok(r) => out.push(r),
                // Lowest chunk index wins; later successes (and errors) drop.
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Parallel map preserving item order: apply `f` to every element, chunked
    /// across the pool. Errors and panics follow [`RegionPermit::run`]'s
    /// discipline.
    pub fn map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, TaskError<E>>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let per_chunk = self.run(items, |_, chunk| {
            chunk.iter().map(&f).collect::<Result<Vec<R>, E>>()
        })?;
        let mut out = Vec::with_capacity(items.len());
        for chunk in per_chunk {
            out.extend(chunk);
        }
        Ok(out)
    }

    /// One round of a parallel pairwise reduction: combine `items[0]` with
    /// `items[1]`, `items[2]` with `items[3]`, …, across the pool, and return
    /// the halved list in order (an odd tail item is carried over by clone).
    /// This is the merge primitive behind the evaluator's post-`ext`
    /// canonicalization: each round is one log-depth level of the combining
    /// tree, so callers can interleave rounds with their own policy (cutoffs,
    /// cancellation polls) between levels.
    ///
    /// `combine` is infallible; panics inside it follow the crate-level
    /// discipline and surface as [`TaskError::Panicked`].
    pub fn combine_round<T, F>(
        &self,
        items: Vec<T>,
        combine: F,
    ) -> Result<Vec<T>, TaskError<Infallible>>
    where
        T: Send + Sync + Clone,
        F: Fn(&T, &T) -> T + Sync,
    {
        if items.len() <= 1 {
            return Ok(items);
        }
        let pairs: Vec<&[T]> = items.chunks(2).collect();
        let per_chunk = self.run(&pairs, |_, chunk| {
            Ok::<_, Infallible>(
                chunk
                    .iter()
                    .map(|pair| match pair {
                        [a, b] => combine(a, b),
                        [a] => a.clone(),
                        _ => unreachable!("chunks(2) yields one- or two-item slices"),
                    })
                    .collect::<Vec<T>>(),
            )
        })?;
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in per_chunk {
            out.extend(chunk);
        }
        Ok(out)
    }

    /// Parallel tree reduction: repeat [`RegionPermit::combine_round`] until
    /// one item (or none, for empty input) remains. The reduction tree is
    /// deterministic — pairing is positional, never completion-ordered — so
    /// non-commutative results are reproducible across pool sizes and
    /// schedules.
    pub fn reduce<T, F>(
        &self,
        mut items: Vec<T>,
        combine: F,
    ) -> Result<Option<T>, TaskError<Infallible>>
    where
        T: Send + Sync + Clone,
        F: Fn(&T, &T) -> T + Sync,
    {
        while items.len() > 1 {
            items = self.combine_round(items, &combine)?;
        }
        Ok(items.pop())
    }

    /// Spawn the worker set once. Skipped after shutdown: a post-shutdown
    /// region still completes, executed entirely by its opening caller.
    fn ensure_spawned(&self) {
        let shared = &self.shared;
        shared.spawn.call_once(|| {
            // The shutdown check must happen *under* the handles lock:
            // `shutdown` drains the handles under the same lock after setting
            // the flag, so either we see the flag and spawn nothing, or our
            // freshly pushed handles are visible to the drain — never a
            // worker set that outlives a returned `shutdown()`.
            let mut handles = shared.handles.lock().unwrap();
            if shared.shutting_down.load(Ordering::Acquire) {
                return;
            }
            for index in 0..shared.config.threads {
                let worker_shared = Arc::clone(shared);
                // Counted before the spawn so the totals are exact the moment
                // `run` can first return (the worker only ever decrements).
                LIVE_POOL_WORKERS.fetch_add(1, Ordering::SeqCst);
                shared.live_workers.fetch_add(1, Ordering::SeqCst);
                shared.spawned_workers.fetch_add(1, Ordering::SeqCst);
                handles.push(
                    thread::Builder::new()
                        .name(format!("ncql-pool-{index}"))
                        .spawn(move || worker_loop(worker_shared, index))
                        .expect("spawning a pool worker thread"),
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(threads: usize) -> WorkStealingPool {
        WorkStealingPool::new(threads)
    }

    fn borrow(pool: &WorkStealingPool) -> RegionPermit {
        pool.try_borrow(pool.threads()).expect("budget starts full")
    }

    #[test]
    fn map_preserves_order_at_every_pool_size() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8] {
            let p = pool(threads);
            let out = borrow(&p).map(&items, |x| Ok::<u64, ()>(x * x)).unwrap();
            assert_eq!(
                out,
                items.iter().map(|x| x * x).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn region_covers_every_item_exactly_once_in_chunk_order() {
        let items: Vec<u64> = (0..57).collect();
        let p = pool(4);
        let chunks = borrow(&p)
            .run(&items, |index, chunk| {
                Ok::<(usize, Vec<u64>), ()>((index, chunk.to_vec()))
            })
            .unwrap();
        let mut seen = Vec::new();
        for (i, (index, chunk)) in chunks.iter().enumerate() {
            assert_eq!(i, *index);
            seen.extend(chunk.iter().copied());
        }
        assert_eq!(seen, items);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let p = pool(4);
        let out = borrow(&p)
            .map(&Vec::<u64>::new(), |_| Ok::<u64, ()>(0))
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(
            p.spawned_workers(),
            0,
            "empty regions must not spawn the worker set"
        );
    }

    #[test]
    fn single_chunk_regions_stay_on_the_calling_thread() {
        let calling = std::thread::current().id();
        let items = [1u64, 2];
        let p = pool(8);
        let out = borrow(&p)
            .run(&items, |_, chunk| {
                assert_eq!(std::thread::current().id(), calling);
                Ok::<usize, ()>(chunk.len())
            })
            .unwrap();
        assert_eq!(out.iter().sum::<usize>(), 2);
        assert_eq!(
            p.spawned_workers(),
            0,
            "inline regions must not spawn the worker set"
        );
    }

    #[test]
    fn workers_spawn_lazily_and_persist_across_regions() {
        // Assert on the pool's OWN counters, not the process-global
        // `live_pool_workers`: sibling tests in this binary spawn pools
        // concurrently on a multi-core harness (the global counter is for
        // the engine's single-test guard binary).
        let p = pool(3);
        assert_eq!(p.spawned_workers(), 0);
        assert_eq!(p.live_workers(), 0);
        let items: Vec<u64> = (0..64).collect();
        for _ in 0..5 {
            let sum: u64 = borrow(&p)
                .run(&items, |_, c| Ok::<u64, ()>(c.iter().sum()))
                .unwrap()
                .into_iter()
                .sum();
            assert_eq!(sum, (0..64).sum());
        }
        // One worker set, spawned once, across all five regions.
        assert_eq!(p.spawned_workers(), 3);
        assert_eq!(p.live_workers(), 3);
        p.shutdown();
        assert_eq!(p.live_workers(), 0, "shutdown joins every worker");
        p.shutdown(); // idempotent
        drop(p); // drop after explicit shutdown is a no-op too
    }

    #[test]
    fn worker_errors_propagate_deterministically() {
        let items: Vec<u64> = (0..64).collect();
        // Several chunks fail; the lowest chunk index must win every run.
        for seed in 0..10 {
            let p = WorkStealingPool::with_config(PoolConfig {
                threads: 4,
                steal_seed: seed,
                ..PoolConfig::default()
            });
            let err = borrow(&p)
                .run(&items, |index, _| {
                    if index >= 1 {
                        Err(format!("chunk {index} failed"))
                    } else {
                        Ok(index)
                    }
                })
                .unwrap_err();
            assert_eq!(
                err,
                TaskError::Failed("chunk 1 failed".to_string()),
                "seed={seed}"
            );
        }
    }

    /// Regression test for the panic-propagation contract, ported from the
    /// fork/join executor onto the pool: a panicking chunk surfaces as
    /// `TaskError::Panicked` with its payload preserved across a steal, the
    /// process survives, every sibling chunk still runs to completion, and
    /// every successful result is dropped rather than leaked into a partial
    /// output — pinned by counting constructed results against drops.
    #[test]
    fn panicking_worker_is_caught_joined_and_reported() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        static BUILT: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct CountsDrops;
        impl Drop for CountsDrops {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let items: Vec<u64> = (0..64).collect();
        let p = pool(4);
        let result = borrow(&p).run(&items, |_, chunk| {
            if chunk.contains(&13) {
                panic!("extern exploded near atom 13");
            }
            BUILT.fetch_add(1, Ordering::SeqCst);
            Ok::<CountsDrops, String>(CountsDrops)
        });
        match result {
            Err(TaskError::Panicked(msg)) => assert!(
                msg.contains("extern exploded near atom 13"),
                "payload message preserved, got: {msg}"
            ),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Every successfully built result was joined and then dropped — none
        // leaked past the error return.
        assert!(
            BUILT.load(Ordering::SeqCst) > 0,
            "siblings of the panicking chunk still ran"
        );
        assert_eq!(DROPS.load(Ordering::SeqCst), BUILT.load(Ordering::SeqCst));
    }

    #[test]
    fn pool_survives_a_panicked_region_and_serves_the_next_one() {
        let items: Vec<u64> = (0..64).collect();
        let p = pool(4);
        for round in 0..3 {
            let err = borrow(&p)
                .run(&items, |_, _| -> Result<u64, ()> {
                    panic!("boom round {round}")
                })
                .unwrap_err();
            assert_eq!(err, TaskError::Panicked(format!("boom round {round}")));
            // The very next region on the same worker set succeeds.
            let ok: u64 = borrow(&p)
                .run(&items, |_, c| Ok::<u64, ()>(c.iter().sum()))
                .unwrap()
                .into_iter()
                .sum();
            assert_eq!(ok, (0..64).sum());
        }
        assert_eq!(p.spawned_workers(), 4, "panics must not kill pool workers");
    }

    #[test]
    fn panics_are_caught_on_the_inline_fast_path_too() {
        // Single-chunk regions run inline, but the panic contract holds there
        // as well.
        let items = [1u64, 2, 3];
        let p = pool(8);
        let err = borrow(&p)
            .run(&items, |_, _| -> Result<u64, ()> { panic!("inline boom") })
            .unwrap_err();
        assert_eq!(err, TaskError::Panicked("inline boom".to_string()));
    }

    #[test]
    fn panic_beaten_by_lower_indexed_error() {
        let items: Vec<u64> = (0..64).collect();
        let p = pool(4);
        let err = borrow(&p)
            .run(&items, |index, _| match index {
                1 => Err("chunk 1 error".to_string()),
                3 => panic!("chunk 3 panic"),
                _ => Ok(index),
            })
            .unwrap_err();
        assert_eq!(err, TaskError::Failed("chunk 1 error".to_string()));
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        let items: Vec<u64> = (0..32).collect();
        let owned = String::from("owned payload");
        let p = pool(2);
        let err = borrow(&p)
            .run(&items, |index, _| {
                if index == 0 {
                    panic!("{}", owned.clone());
                }
                Ok::<u64, ()>(0)
            })
            .unwrap_err();
        assert_eq!(err, TaskError::Panicked("owned payload".to_string()));
    }

    #[test]
    fn steal_order_randomization_never_changes_results() {
        // The scheduling shim: sweep seeds (different victim orders per run)
        // and demand bit-identical output every time.
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for seed in 0..24 {
            let p = WorkStealingPool::with_config(PoolConfig {
                threads: 4,
                steal_seed: seed,
                ..PoolConfig::default()
            });
            let out = borrow(&p)
                .map(&items, |x| Ok::<u64, ()>(x * 3 + 1))
                .unwrap();
            assert_eq!(out, expected, "seed={seed}");
        }
    }

    #[test]
    fn budget_semaphore_lends_and_restores_permits() {
        let p = pool(4);
        assert_eq!(p.available_budget(), 4);
        let outer = p.try_borrow(3).unwrap();
        assert_eq!(outer.workers(), 3);
        assert_eq!(p.available_budget(), 1);
        // An inner region can borrow what the outer left idle — but no more.
        let inner = p.try_borrow(8).unwrap();
        assert_eq!(inner.workers(), 1);
        assert_eq!(p.available_budget(), 0);
        assert!(
            p.try_borrow(1).is_none(),
            "an exhausted budget refuses further borrows"
        );
        drop(inner);
        drop(outer);
        assert_eq!(
            p.available_budget(),
            4,
            "dropped permits return to the budget"
        );
    }

    #[test]
    fn nested_regions_share_one_worker_set_without_deadlock() {
        let p = pool(4);
        let outer_items: Vec<u64> = (0..32).collect();
        let outer = p.try_borrow(2).unwrap(); // leave two workers lendable
        let totals = outer
            .run(&outer_items, |_, chunk| {
                // Inner regions borrow whatever is left (possibly nothing —
                // then try_borrow fails and we run inline), all on the same
                // bounded worker set.
                let inner_items: Vec<u64> = (0..64).collect();
                let inner_total: u64 = match p.try_borrow(2) {
                    Some(permit) => permit
                        .run(&inner_items, |_, c| Ok::<u64, ()>(c.iter().sum()))
                        .map_err(|_| ())?
                        .into_iter()
                        .sum(),
                    None => inner_items.iter().sum(),
                };
                Ok::<u64, ()>(inner_total * chunk.len() as u64)
            })
            .unwrap();
        let inner_sum: u64 = (0..64).sum();
        assert_eq!(
            totals.iter().sum::<u64>(),
            inner_sum * outer_items.len() as u64
        );
        drop(outer);
        assert_eq!(p.available_budget(), 4, "nested permits all returned");
        assert_eq!(
            p.spawned_workers(),
            4,
            "nesting must not grow the worker set"
        );
    }

    /// Shutdown racing an in-flight region: the workers are told to exit while
    /// chunks are still queued. The region must still complete with correct
    /// results — the opening caller drains abandoned chunks itself — and the
    /// pool must join its workers cleanly.
    #[test]
    fn shutdown_mid_region_completes_the_region_on_the_caller() {
        let p = pool(4);
        let items: Vec<u64> = (0..256).collect();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| {
                let mut grand_total = 0u64;
                for _ in 0..50 {
                    let total: u64 = borrow(&p)
                        .run(&items, |_, chunk| {
                            std::thread::yield_now();
                            Ok::<u64, ()>(chunk.iter().sum())
                        })
                        .unwrap()
                        .into_iter()
                        .sum();
                    grand_total += total;
                }
                grand_total
            });
            // Tear the workers down while the runner is mid-region.
            p.shutdown();
            let grand_total = runner.join().unwrap();
            assert_eq!(grand_total, (0..256u64).sum::<u64>() * 50);
        });
        assert_eq!(p.live_workers(), 0, "every worker joined");
        // Post-shutdown regions still work, caller-only.
        let total: u64 = borrow(&p)
            .run(&items, |_, chunk| Ok::<u64, ()>(chunk.iter().sum()))
            .unwrap()
            .into_iter()
            .sum();
        assert_eq!(total, (0..256).sum());
    }

    #[test]
    fn uneven_chunk_costs_rebalance_across_workers() {
        // One pathological chunk sleeps; stealing lets the other workers chew
        // through the rest meanwhile. We can only assert completion and
        // correctness portably, but with 4 workers × 4 chunks each the slow
        // chunk overlaps 15 fast ones.
        let items: Vec<u64> = (0..160).collect();
        let p = pool(4);
        let out = borrow(&p)
            .run(&items, |index, chunk| {
                if index == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Ok::<u64, ()>(chunk.iter().sum())
            })
            .unwrap();
        assert_eq!(out.iter().sum::<u64>(), (0..160).sum());
    }

    #[test]
    fn combine_round_halves_in_order_and_carries_the_odd_tail() {
        let p = pool(4);
        let permit = borrow(&p);
        // Concatenation is non-commutative, so this checks pairing order too.
        let items: Vec<String> = (0..7).map(|i| i.to_string()).collect();
        let round = permit
            .combine_round(items, |a: &String, b: &String| format!("{a}{b}"))
            .unwrap();
        assert_eq!(round, vec!["01", "23", "45", "6"]);
        let single = permit.combine_round(vec![9u64], |a, b| a + b).unwrap();
        assert_eq!(single, vec![9]);
        let empty = permit
            .combine_round(Vec::<u64>::new(), |a, b| a + b)
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn reduce_matches_a_sequential_fold_across_pool_sizes() {
        for threads in [1, 2, 4, 8] {
            let p = pool(threads);
            let permit = borrow(&p);
            let items: Vec<String> = (0..37).map(|i| format!("<{i}>")).collect();
            let expected = {
                // The same positional pairing tree, folded sequentially.
                let mut level = items.clone();
                while level.len() > 1 {
                    level = level
                        .chunks(2)
                        .map(|c| c.iter().cloned().collect::<String>())
                        .collect();
                }
                level.pop().unwrap()
            };
            let got = permit
                .reduce(items, |a: &String, b: &String| format!("{a}{b}"))
                .unwrap()
                .unwrap();
            assert_eq!(got, expected);
            assert_eq!(
                permit.reduce(Vec::<u64>::new(), |a, b| a + b).unwrap(),
                None
            );
        }
    }

    #[test]
    fn combine_round_surfaces_panics_deterministically() {
        let p = pool(4);
        let permit = borrow(&p);
        let items: Vec<u64> = (0..64).collect();
        let err = permit
            .combine_round(items, |a, b| {
                if a + b == 1 {
                    panic!("boom at the first pair");
                }
                a + b
            })
            .unwrap_err();
        match err {
            TaskError::Panicked(msg) => assert!(msg.contains("boom"), "{msg}"),
            TaskError::Failed(_) => unreachable!("combine is infallible"),
        }
    }
}
