//! E4 — Proposition 2.2: bounded vs unbounded recursion over flat relations.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::eval_closed;
use ncql_core::expr::Expr;
use ncql_queries::{datagen, graph};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_bounded_dcr");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [6u64, 10, 14] {
        let r = Expr::constant(datagen::cycle_graph(n).to_value());
        group.bench_with_input(BenchmarkId::new("unbounded_dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_dcr(r.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bounded_blog_loop", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_blog_loop(r.clone())).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
