//! External functions Σ (Proposition 6.3).
//!
//! The paper considers extending the language with a set Σ of external base types
//! and functions computable in NC: "the usual arithmetical operations (+, *, −, /,
//! etc), and the usual aggregate functions (cardinality, sum, average, etc.)".
//! Proposition 6.3 states that `NRA(Σ, bdcr)` stays within NC, whereas unbounded
//! `dcr` together with unbounded arithmetic (`NRA¹(ℕ, +, dcr)`) can express
//! exponential-space queries — the registry here is what the corresponding
//! experiment (E8) toggles.
//!
//! Every external is a total Rust function on values with a declared signature;
//! the type checker uses the signature, and the evaluator charges one unit of
//! work and one unit of span per call (externals are assumed to be NC-computable
//! black boxes).

use crate::error::EvalError;
use ncql_object::{Type, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Shared implementation signature of an external function.
pub type ExternBody = Arc<dyn Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync>;

/// Word-level twin of an external implementation, used by the row-kernel
/// compiler (`crate::kernel`): a *total* function over the encoded words of
/// the function's scalar arguments, producing the encoded word of its scalar
/// result. Only meaningful for externals whose parameter and result types are
/// all one-word scalars; the slice has exactly the declared arity.
pub type ScalarExternFn = fn(&[u64]) -> u64;

/// Implementation of a single external function.
#[derive(Clone)]
pub struct ExternFn {
    /// Argument types.
    pub params: Vec<Type>,
    /// Result type.
    pub result: Type,
    /// The implementation.
    pub body: ExternBody,
    /// Word-level twin of `body` for the row-kernel compiler, present only on
    /// the built-ins of [`ExternRegistry::standard`] (whose word semantics are
    /// known exactly). [`ExternRegistry::register`] always clears it, so
    /// re-registering a standard name with a custom body also disables the
    /// kernel shortcut for that name — the hint can never diverge from the
    /// boxed implementation.
    pub(crate) scalar: Option<ScalarExternFn>,
}

impl ExternFn {
    /// The word-level twin, when one exists (see [`ScalarExternFn`]).
    pub fn scalar_hint(&self) -> Option<ScalarExternFn> {
        self.scalar
    }
}

impl fmt::Debug for ExternFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExternFn({:?} -> {})", self.params, self.result)
    }
}

/// A registry Σ of external functions, keyed by name.
///
/// The map is `Arc`-shared with copy-on-write registration: cloning a registry
/// (which happens on every `EvalConfig` clone — once per evaluation and once
/// per parallel worker shard) is O(1) pointer sharing, and [`register`] only
/// deep-copies the map when the handle is actually shared.
///
/// [`register`]: ExternRegistry::register
#[derive(Debug, Clone, Default)]
pub struct ExternRegistry {
    fns: Arc<BTreeMap<String, ExternFn>>,
}

impl ExternRegistry {
    /// The empty Σ (the pure language of the main theorems).
    pub fn empty() -> ExternRegistry {
        ExternRegistry {
            fns: Arc::new(BTreeMap::new()),
        }
    }

    /// The standard arithmetic/aggregate extension used by the experiments:
    /// `nat_add`, `nat_sub`, `nat_mul`, `nat_div`, `nat_leq`, `nat_bit`,
    /// `card` (cardinality of a set as a natural), `nat_max`, `nat_min`,
    /// `atom_to_nat` and `nat_to_atom` (coercions along the order isomorphism).
    pub fn standard() -> ExternRegistry {
        let mut reg = ExternRegistry::empty();

        reg.register_binary_nat("nat_add", |a, b| a.saturating_add(b));
        reg.register_binary_nat("nat_sub", |a, b| a.saturating_sub(b));
        reg.register_binary_nat("nat_mul", |a, b| a.saturating_mul(b));
        reg.register_binary_nat("nat_div", |a, b| a.checked_div(b).unwrap_or(0));
        reg.register_binary_nat("nat_max", |a, b| a.max(b));
        reg.register_binary_nat("nat_min", |a, b| a.min(b));

        reg.register("nat_leq", vec![Type::Nat, Type::Nat], Type::Bool, |args| {
            let (a, b) = two_nats(args)?;
            Ok(Value::Bool(a <= b))
        });

        // BIT(i, j): the j-th bit of the binary representation of i (the BIT
        // relation of Immerman used throughout §7).
        reg.register("nat_bit", vec![Type::Nat, Type::Nat], Type::Bool, |args| {
            let (i, j) = two_nats(args)?;
            Ok(Value::Bool(j < 64 && (i >> j) & 1 == 1))
        });

        // Cardinality of any set, as a natural number.
        reg.register(
            "card",
            vec![Type::set(Type::Base)],
            Type::Nat,
            |args| match args.first() {
                Some(Value::Set(s)) => Ok(Value::Nat(s.len() as u64)),
                other => Err(EvalError::extern_failure(format!(
                    "card expects a set, got {other:?}"
                ))),
            },
        );

        reg.register(
            "atom_to_nat",
            vec![Type::Base],
            Type::Nat,
            |args| match args.first() {
                Some(Value::Atom(a)) => Ok(Value::Nat(*a)),
                other => Err(EvalError::extern_failure(format!(
                    "atom_to_nat expects an atom, got {other:?}"
                ))),
            },
        );

        reg.register(
            "nat_to_atom",
            vec![Type::Nat],
            Type::Base,
            |args| match args.first() {
                Some(Value::Nat(n)) => Ok(Value::Atom(*n)),
                other => Err(EvalError::extern_failure(format!(
                    "nat_to_atom expects a natural, got {other:?}"
                ))),
            },
        );

        // Word-level twins for the kernel compiler. Booleans encode as 0/1
        // and atoms/naturals as their identity, so each twin is exactly the
        // boxed body on encoded words.
        reg.attach_scalar("nat_add", |w| w[0].saturating_add(w[1]));
        reg.attach_scalar("nat_sub", |w| w[0].saturating_sub(w[1]));
        reg.attach_scalar("nat_mul", |w| w[0].saturating_mul(w[1]));
        reg.attach_scalar("nat_div", |w| w[0].checked_div(w[1]).unwrap_or(0));
        reg.attach_scalar("nat_max", |w| w[0].max(w[1]));
        reg.attach_scalar("nat_min", |w| w[0].min(w[1]));
        reg.attach_scalar("nat_leq", |w| u64::from(w[0] <= w[1]));
        reg.attach_scalar("nat_bit", |w| {
            u64::from(w[1] < 64 && (w[0] >> w[1]) & 1 == 1)
        });
        reg.attach_scalar("atom_to_nat", |w| w[0]);
        reg.attach_scalar("nat_to_atom", |w| w[0]);

        reg
    }

    /// Register an external function. Copy-on-write: when this registry handle
    /// shares its map with clones (e.g. a running session's config), the map
    /// is copied once here and the clones keep the old Σ.
    pub fn register<F>(&mut self, name: &str, params: Vec<Type>, result: Type, body: F)
    where
        F: Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync + 'static,
    {
        Arc::make_mut(&mut self.fns).insert(
            name.to_string(),
            ExternFn {
                params,
                result,
                body: Arc::new(body),
                scalar: None,
            },
        );
    }

    /// Attach a word-level twin to an already-registered built-in (see
    /// [`ExternFn::scalar_hint`]). Private on purpose: hints are only sound
    /// when the twin matches the boxed body bit-for-bit, which this crate can
    /// promise for its own standard registry but not for user registrations.
    fn attach_scalar(&mut self, name: &str, scalar: ScalarExternFn) {
        if let Some(f) = Arc::make_mut(&mut self.fns).get_mut(name) {
            f.scalar = Some(scalar);
        }
    }

    fn register_binary_nat<F>(&mut self, name: &str, op: F)
    where
        F: Fn(u64, u64) -> u64 + Send + Sync + 'static,
    {
        self.register(name, vec![Type::Nat, Type::Nat], Type::Nat, move |args| {
            let (a, b) = two_nats(args)?;
            Ok(Value::Nat(op(a, b)))
        });
    }

    /// Look up an external by name.
    pub fn get(&self, name: &str) -> Option<&ExternFn> {
        self.fns.get(name)
    }

    /// Names of all registered externals (sorted).
    pub fn names(&self) -> Vec<&str> {
        self.fns.keys().map(String::as_str).collect()
    }

    /// Does the registry contain the given name?
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// A fingerprint of the registry's *interface*: a hash over the sorted
    /// function names and their declared signatures. Two registries with the
    /// same names and types fingerprint identically even if the Rust bodies
    /// differ — the bodies are opaque closures — so the fingerprint identifies
    /// what the *type checker* can observe. The engine's prepared-statement
    /// cache keys plans by (query text, registry fingerprint), which is exactly
    /// the pair the front end (parse + typecheck) depends on.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fns.len().hash(&mut h);
        for (name, f) in self.fns.iter() {
            name.hash(&mut h);
            for p in &f.params {
                p.to_string().hash(&mut h);
            }
            f.result.to_string().hash(&mut h);
        }
        h.finish()
    }

    /// The maximum set height over all parameter and result types of the
    /// registered externals. Proposition 6.5 requires Σ to have set height ≤ 1
    /// for the conservative-extension result; this lets callers check that.
    pub fn max_set_height(&self) -> usize {
        self.fns
            .values()
            .flat_map(|f| f.params.iter().chain(std::iter::once(&f.result)))
            .map(Type::set_height)
            .max()
            .unwrap_or(0)
    }
}

fn two_nats(args: &[Value]) -> Result<(u64, u64), EvalError> {
    match (args.first(), args.get(1)) {
        (Some(Value::Nat(a)), Some(Value::Nat(b))) => Ok((*a, *b)),
        _ => Err(EvalError::extern_failure(format!(
            "expected two naturals, got {args:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_arithmetic() {
        let reg = ExternRegistry::standard();
        for name in ["nat_add", "nat_mul", "nat_leq", "card", "nat_bit"] {
            assert!(reg.contains(name), "missing {name}");
        }
    }

    #[test]
    fn nat_add_works() {
        let reg = ExternRegistry::standard();
        let f = reg.get("nat_add").unwrap();
        let v = (f.body)(&[Value::Nat(2), Value::Nat(3)]).unwrap();
        assert_eq!(v, Value::Nat(5));
    }

    #[test]
    fn nat_bit_extracts_bits() {
        let reg = ExternRegistry::standard();
        let f = reg.get("nat_bit").unwrap();
        assert_eq!(
            (f.body)(&[Value::Nat(5), Value::Nat(0)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            (f.body)(&[Value::Nat(5), Value::Nat(1)]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            (f.body)(&[Value::Nat(5), Value::Nat(2)]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn card_counts_elements() {
        let reg = ExternRegistry::standard();
        let f = reg.get("card").unwrap();
        let s = Value::atom_set(vec![1, 2, 3]);
        assert_eq!((f.body)(&[s]).unwrap(), Value::Nat(3));
    }

    #[test]
    fn arity_errors_are_reported() {
        let reg = ExternRegistry::standard();
        let f = reg.get("nat_add").unwrap();
        assert!((f.body)(&[Value::Nat(1)]).is_err());
    }

    #[test]
    fn registration_is_copy_on_write() {
        let mut original = ExternRegistry::standard();
        let shared = original.clone();
        original.register("extra", vec![Type::Nat], Type::Nat, |args| {
            Ok(args[0].clone())
        });
        assert!(original.contains("extra"));
        assert!(!shared.contains("extra"), "clones keep the old Σ");
        assert_ne!(original.fingerprint(), shared.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_the_interface() {
        let std1 = ExternRegistry::standard();
        let std2 = ExternRegistry::standard();
        assert_eq!(std1.fingerprint(), std2.fingerprint(), "deterministic");
        assert_ne!(
            std1.fingerprint(),
            ExternRegistry::empty().fingerprint(),
            "different name sets differ"
        );
        let mut extended = ExternRegistry::standard();
        extended.register("shout", vec![Type::Base], Type::Base, |args| {
            Ok(args[0].clone())
        });
        assert_ne!(
            std1.fingerprint(),
            extended.fingerprint(),
            "new extern changes it"
        );
        // Re-registering an existing name with a different *signature* changes it too.
        let mut retyped = ExternRegistry::standard();
        retyped.register("card", vec![Type::set(Type::Base)], Type::Base, |args| {
            Ok(args[0].clone())
        });
        assert_ne!(std1.fingerprint(), retyped.fingerprint());
    }

    #[test]
    fn scalar_hints_match_the_boxed_bodies() {
        let reg = ExternRegistry::standard();
        let samples = [0u64, 1, 2, 5, 63, 64, 1000, u64::MAX];
        for name in [
            "nat_add", "nat_sub", "nat_mul", "nat_div", "nat_max", "nat_min", "nat_leq", "nat_bit",
        ] {
            let f = reg.get(name).unwrap();
            let scalar = f.scalar_hint().expect("standard arithmetic has a twin");
            for &a in &samples {
                for &b in &samples {
                    let boxed = (f.body)(&[Value::Nat(a), Value::Nat(b)]).unwrap();
                    let word = scalar(&[a, b]);
                    let expected = match boxed {
                        Value::Nat(n) => n,
                        Value::Bool(v) => u64::from(v),
                        other => panic!("unexpected result {other}"),
                    };
                    assert_eq!(word, expected, "{name}({a}, {b})");
                }
            }
        }
        assert_eq!(
            reg.get("atom_to_nat").unwrap().scalar_hint().unwrap()(&[9]),
            9
        );
        assert!(reg.get("card").unwrap().scalar_hint().is_none());
    }

    #[test]
    fn user_registration_clears_the_scalar_hint() {
        let mut reg = ExternRegistry::standard();
        reg.register("nat_add", vec![Type::Nat, Type::Nat], Type::Nat, |args| {
            let (a, b) = two_nats(args)?;
            Ok(Value::Nat(a.wrapping_add(b).wrapping_add(1)))
        });
        assert!(
            reg.get("nat_add").unwrap().scalar_hint().is_none(),
            "a re-registered body must not keep the old word twin"
        );
    }

    #[test]
    fn standard_registry_is_flat() {
        // All standard externals have set height ≤ 1 (Proposition 6.5 hypothesis).
        assert!(ExternRegistry::standard().max_set_height() <= 1);
    }
}
